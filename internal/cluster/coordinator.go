package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"smtflex/internal/config"
	"smtflex/internal/faults"
	"smtflex/internal/memo"
	"smtflex/internal/obs"
	"smtflex/internal/study"
	"smtflex/internal/workload"
)

// Options parameterizes a Coordinator. Zero values select defaults.
type Options struct {
	// Client performs worker HTTP requests (default: a plain http.Client;
	// per-attempt timeouts come from contexts, not the client).
	Client *http.Client
	// PerWorkerInflight bounds concurrent dispatches per worker (default 4).
	PerWorkerInflight int
	// AttemptTimeout caps one dispatch attempt (default 60s).
	AttemptTimeout time.Duration
	// HedgeDelay is how long a dispatch may run before a second attempt is
	// launched on a different worker (default 3s). Zero selects the default;
	// negative disables hedging.
	HedgeDelay time.Duration
	// ShedBudget is how many 503 sheds from one worker an attempt absorbs
	// (honoring Retry-After) before trying elsewhere (default 8).
	ShedBudget int
	// Replicas is the consistent-hash virtual-node count per worker
	// (default 64).
	Replicas int
	// StoreCap bounds the fleet result store in cells, LRU-evicted
	// (0 = unbounded). SweepCap does the same for assembled sweeps.
	StoreCap int
	SweepCap int
	// Logger receives dispatch warnings (default slog.Default()).
	Logger *slog.Logger
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	url      string
	alive    atomic.Bool
	assigned atomic.Int64 // cells whose ring owner this worker is
	done     atomic.Int64 // cells this worker completed
	stolen   atomic.Int64 // cells this worker's dispatchers stole
	inflight atomic.Int64 // dispatch attempts currently on the wire

	mu      sync.Mutex
	lastErr string
}

func (w *workerState) fail(err error) {
	w.alive.Store(false)
	w.mu.Lock()
	w.lastErr = err.Error()
	w.mu.Unlock()
}

func (w *workerState) lastError() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// Coordinator is the fabric's control plane: it decomposes sweeps into
// content-addressed cells, dispatches them across the worker fleet with
// work-stealing and hedged retries, and reassembles bit-identical tables.
// It is safe for concurrent use; identical concurrent sweeps coalesce onto
// one fleet computation.
type Coordinator struct {
	st      *study.Study
	opts    Options
	log     *slog.Logger
	client  *http.Client
	workers []*workerState
	ring    *ring

	// store is the fleet-level content-addressed result store; hits skip
	// dispatch entirely. Counters are tracked separately (storeHits/Misses)
	// because lookups go through Cached, which the memo cache does not count.
	store  memo.Cache[string, CellResponse]
	sweeps memo.Cache[string, *study.Sweep]

	storeHits, storeMisses                                atomic.Int64
	dispatched, steals, retries, hedges, sheds, fallbacks atomic.Int64
}

// NewCoordinator builds a Coordinator over the worker base URLs
// (e.g. "http://10.0.0.2:8080").
func NewCoordinator(st *study.Study, workerURLs []string, opts Options) (*Coordinator, error) {
	if st == nil {
		return nil, errors.New("cluster: coordinator needs a study engine")
	}
	if len(workerURLs) == 0 {
		return nil, ErrNoWorkers
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.PerWorkerInflight <= 0 {
		opts.PerWorkerInflight = 4
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 60 * time.Second
	}
	if opts.HedgeDelay == 0 {
		opts.HedgeDelay = 3 * time.Second
	}
	if opts.ShedBudget <= 0 {
		opts.ShedBudget = 8
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	c := &Coordinator{
		st:     st,
		opts:   opts,
		log:    opts.Logger,
		client: opts.Client,
		ring:   newRing(workerURLs, opts.Replicas),
	}
	for _, u := range workerURLs {
		ws := &workerState{url: u}
		ws.alive.Store(true) // optimistic until a probe or dispatch says otherwise
		c.workers = append(c.workers, ws)
	}
	c.store.Name = "fleet"
	if opts.StoreCap > 0 {
		c.store.Bound(opts.StoreCap)
	}
	c.sweeps.Name = "fleet-sweeps"
	if opts.SweepCap > 0 {
		c.sweeps.Bound(opts.SweepCap)
	}
	return c, nil
}

// Probe checks every worker's /healthz concurrently, updating liveness.
// Dead workers are resurrected by a successful probe, so a restarted worker
// rejoins the fleet at the next sweep (or /healthz scrape).
func (c *Coordinator) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ws := range c.workers {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, ws.url+"/healthz", nil)
			if err != nil {
				ws.fail(err)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				ws.fail(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ws.alive.Store(true)
			} else {
				ws.fail(fmt.Errorf("healthz: status %d", resp.StatusCode))
			}
		}(ws)
	}
	wg.Wait()
}

// SweepDesign runs one design sweep through the fleet. The result is
// bit-for-bit identical to study.Study.SweepDesign on the same engine
// configuration: the cells are evaluated by the same per-mix code on the
// workers and reassembled by the same study.AssembleSweep. Identical
// concurrent calls coalesce; a context-carried progress hook
// (study.WithProgress) fires per completed cell, like the local pool's.
func (c *Coordinator) SweepDesign(ctx context.Context, d config.Design, k study.Kind) (*study.Sweep, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prog := study.ProgressFrom(ctx)
	return c.sweeps.GetCtx(ctx, c.st.SweepKey(d, k), func(cctx context.Context) (*study.Sweep, error) {
		return c.computeSweep(cctx, d, k, prog)
	})
}

// cell is one dispatchable work unit of a sweep.
type cell struct {
	n, mi int
	key   string
	d     config.Design
	mix   workload.Mix
	req   CellRequest
}

// sched is the per-sweep work-stealing scheduler: one queue per worker,
// populated by ring ownership. Dispatchers pop their own queue first and
// steal from the tail of other workers' queues when theirs runs dry, so a
// straggling or dead worker's cells drain through the rest of the fleet.
type sched struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queues      [][]*cell
	pending     int
	outstanding int
	done        int // completed cells, including store prefills
	err         error
	stopped     bool
}

func newSched(nWorkers, prefilled int) *sched {
	s := &sched{queues: make([][]*cell, nWorkers), done: prefilled}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push enqueues a cell on its owner's queue.
func (s *sched) push(owner int, cl *cell) {
	s.mu.Lock()
	s.queues[owner] = append(s.queues[owner], cl)
	s.pending++
	s.mu.Unlock()
}

// next blocks until a cell is available, preferring self's queue and
// stealing from others' tails otherwise. It returns nil when the sweep is
// finished, failed or stopped.
func (s *sched) next(self int) (cl *cell, stolen bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.stopped {
			return nil, false
		}
		if q := s.queues[self]; len(q) > 0 {
			cl, s.queues[self] = q[0], q[1:]
			s.pending--
			s.outstanding++
			return cl, false
		}
		for off := 1; off < len(s.queues); off++ {
			j := (self + off) % len(s.queues)
			if q := s.queues[j]; len(q) > 0 {
				cl, s.queues[j] = q[len(q)-1], q[:len(q)-1]
				s.pending--
				s.outstanding++
				return cl, true
			}
		}
		if s.pending == 0 && s.outstanding == 0 {
			return nil, false
		}
		s.cond.Wait()
	}
}

// complete marks one cell finished and returns the completed count.
func (s *sched) complete() int {
	s.mu.Lock()
	s.outstanding--
	s.done++
	done := s.done
	if s.pending == 0 && s.outstanding == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	return done
}

// fail records the sweep's terminal error and wakes every dispatcher.
func (s *sched) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.outstanding--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// stop wakes every dispatcher so they observe cancellation.
func (s *sched) stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *sched) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// computeSweep decomposes, dispatches and reassembles one sweep.
func (c *Coordinator) computeSweep(ctx context.Context, d config.Design, k study.Kind, prog study.ProgressFunc) (*study.Sweep, error) {
	ctx, sp := obs.StartSpan(ctx, "cluster.sweep")
	sp.SetAttr("design", d.Name)
	sp.SetAttr("kind", k.String())
	defer sp.End()

	c.Probe(ctx)
	mixes, nMixes, err := c.st.SweepMixes(k)
	if err != nil {
		return nil, err
	}
	total := study.MaxThreads * nMixes
	results := make([][]study.MixResult, study.MaxThreads)
	for i := range results {
		results[i] = make([]study.MixResult, nMixes)
	}

	// Decompose into cells, serving what the fleet store already holds.
	fingerprint := c.st.Fingerprint()
	var cells []*cell
	for n := 1; n <= study.MaxThreads; n++ {
		for mi := 0; mi < nMixes; mi++ {
			mix := mixes[n][mi]
			key := memo.KeyHash(c.st.CellKey(d, k, n, mix))
			if resp, ok := c.store.Cached(key); ok {
				c.storeHits.Add(1)
				results[n-1][mi] = fromWire(resp)
				continue
			}
			c.storeMisses.Add(1)
			cells = append(cells, &cell{
				n: n, mi: mi, key: key, d: d, mix: mix,
				req: CellRequest{
					Key:           key,
					Fingerprint:   fingerprint,
					Design:        d.Name,
					SMT:           d.SMTEnabled,
					BandwidthGBps: d.MemBandwidthGBps,
					Kind:          k.String(),
					N:             n,
					MixID:         mix.ID,
					Programs:      mix.Programs,
				},
			})
		}
	}
	prefilled := total - len(cells)
	sp.SetAttr("cells", total)
	sp.SetAttr("store_hits", prefilled)
	if prog != nil && prefilled > 0 {
		prog(prefilled, total)
	}
	if len(cells) == 0 {
		return study.AssembleSweep(d, k, mixes, results)
	}

	sc := newSched(len(c.workers), prefilled)
	for _, cl := range cells {
		owner := c.ring.ownerOf(cl.key)
		c.workers[owner].assigned.Add(1)
		sc.push(owner, cl)
	}

	// Wake dispatchers blocked in next() if the caller goes away.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sc.stop()
		case <-watchDone:
		}
	}()
	defer close(watchDone)

	var mu sync.Mutex // guards results writes (distinct slots, but keep the race detector honest)
	var wg sync.WaitGroup
	for wi := range c.workers {
		for slot := 0; slot < c.opts.PerWorkerInflight; slot++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				for {
					cl, stolen := sc.next(wi)
					if cl == nil {
						return
					}
					if stolen {
						c.steals.Add(1)
						c.workers[wi].stolen.Add(1)
					}
					resp, err := c.processCell(ctx, cl, wi, stolen)
					if err != nil {
						sc.fail(err)
						return
					}
					c.store.Put(cl.key, resp)
					mu.Lock()
					results[cl.n-1][cl.mi] = fromWire(resp)
					mu.Unlock()
					done := sc.complete()
					if prog != nil {
						prog(done, total)
					}
				}
			}(wi)
		}
	}
	wg.Wait()
	if err := sc.failure(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return study.AssembleSweep(d, k, mixes, results)
}

// terminalError marks failures no retry can fix: the request itself is bad
// (unknown design, fingerprint mismatch) or the engine rejected the cell.
type terminalError struct {
	status int
	msg    string
}

func (e *terminalError) Error() string {
	return fmt.Sprintf("cluster: worker rejected cell (status %d): %s", e.status, e.msg)
}

// shedError marks a worker that kept shedding (503) past the budget; the
// worker is healthy but saturated, so it is skipped for this cell without
// being marked dead.
type shedError struct{ worker string }

func (e *shedError) Error() string {
	return fmt.Sprintf("cluster: worker %s shedding past budget", e.worker)
}

// processCell drives one cell to completion: preferred worker first, hedged
// against stragglers, retried on other live workers after a loss, and
// computed locally when the whole fleet is gone — a sweep never stalls on a
// dead fleet.
func (c *Coordinator) processCell(ctx context.Context, cl *cell, self int, stolen bool) (CellResponse, error) {
	ctx, sp := obs.StartSpan(ctx, "cluster.cell")
	sp.SetAttr("key", cl.key)
	sp.SetAttr("n", cl.n)
	sp.SetAttr("mix", cl.mix.ID)
	if stolen {
		sp.SetAttr("stolen", true)
	}
	defer sp.End()

	tried := make(map[int]bool)
	target := self
	if !c.workers[self].alive.Load() {
		target = c.pickLive(tried)
	}
	for {
		if err := ctx.Err(); err != nil {
			return CellResponse{}, err
		}
		if target < 0 {
			// No untried live worker remains: compute the cell locally so the
			// sweep still converges (counted, spanned, and identical by
			// construction — it is the same EvaluateMixCtx the workers run).
			c.fallbacks.Add(1)
			_, fsp := obs.StartSpan(ctx, "cluster.fallback")
			fsp.SetAttr("key", cl.key)
			r, err := c.st.EvaluateMixCtx(ctx, cl.d, cl.mix)
			fsp.End()
			if err != nil {
				return CellResponse{}, fmt.Errorf("cluster: local fallback for %s: %w", cl.mix.ID, err)
			}
			return toWire(cl.key, r), nil
		}
		tried[target] = true
		resp, err := c.dispatchHedged(ctx, cl, target)
		if err == nil {
			c.workers[target].done.Add(1)
			sp.SetAttr("worker", c.workers[target].url)
			return resp, nil
		}
		var te *terminalError
		if errors.As(err, &te) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return CellResponse{}, err
		}
		// Transport loss or shed budget: try the next live worker.
		c.retries.Add(1)
		c.log.Warn("cell re-dispatch", "key", cl.key, "worker", c.workers[target].url, "err", err)
		target = c.pickLive(tried)
	}
}

// pickLive returns a live worker index not in tried, or -1. It prefers the
// least-loaded (fewest inflight dispatches) so hedges and retries spread.
func (c *Coordinator) pickLive(tried map[int]bool) int {
	best, bestLoad := -1, int64(0)
	for i, ws := range c.workers {
		if tried[i] || !ws.alive.Load() {
			continue
		}
		load := ws.inflight.Load()
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// dispatchHedged runs one dispatch attempt against primary, launching a
// second attempt on a different live worker if the first exceeds the hedge
// delay; the first success wins and the loser's request is cancelled.
func (c *Coordinator) dispatchHedged(ctx context.Context, cl *cell, primary int) (CellResponse, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type out struct {
		resp   CellResponse
		err    error
		worker int
	}
	ch := make(chan out, 2)
	launch := func(wi int) {
		go func() {
			resp, err := c.attempt(hctx, cl, wi)
			ch <- out{resp, err, wi}
		}()
	}
	launch(primary)
	inflight := 1
	hedged := false

	var hedgeC <-chan time.Time
	if c.opts.HedgeDelay > 0 {
		timer := time.NewTimer(c.opts.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var lastErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				return o.resp, nil
			}
			lastErr = o.err
			var te *terminalError
			if errors.As(o.err, &te) {
				return CellResponse{}, o.err
			}
			var se *shedError
			if !errors.As(o.err, &se) && hctx.Err() == nil {
				c.workers[o.worker].fail(o.err)
			}
			if inflight > 0 {
				continue // a hedge is still running; it may yet win
			}
			return CellResponse{}, lastErr
		case <-hedgeC:
			hedgeC = nil
			if hedged {
				continue
			}
			if backup := c.pickLive(map[int]bool{primary: true}); backup >= 0 {
				hedged = true
				c.hedges.Add(1)
				_, hsp := obs.StartSpan(hctx, "cluster.hedge")
				hsp.SetAttr("key", cl.key)
				hsp.SetAttr("worker", c.workers[backup].url)
				hsp.End()
				launch(backup)
				inflight++
			}
		case <-hctx.Done():
			return CellResponse{}, hctx.Err()
		}
	}
}

// attempt performs one HTTP dispatch of a cell to one worker, absorbing up
// to the shed budget of 503s (honoring jittered Retry-After).
func (c *Coordinator) attempt(ctx context.Context, cl *cell, wi int) (CellResponse, error) {
	ws := c.workers[wi]
	_, sp := obs.StartSpan(ctx, "cluster.dispatch")
	sp.SetAttr("worker", ws.url)
	sp.SetAttr("key", cl.key)
	defer sp.End()
	if err := faults.Check(faults.SiteDispatch); err != nil {
		sp.SetAttr("error", err.Error())
		return CellResponse{}, err
	}
	body, err := json.Marshal(cl.req)
	if err != nil {
		return CellResponse{}, &terminalError{0, err.Error()}
	}
	c.dispatched.Add(1)
	ws.inflight.Add(1)
	defer ws.inflight.Add(-1)

	for shed := 0; ; shed++ {
		actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
		resp, err := c.post(actx, ws.url+CellPath, body)
		if err != nil {
			cancel()
			sp.SetAttr("error", err.Error())
			return CellResponse{}, err
		}
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		cancel()
		if rerr != nil {
			sp.SetAttr("error", rerr.Error())
			return CellResponse{}, rerr
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var cr CellResponse
			if err := json.Unmarshal(b, &cr); err != nil {
				return CellResponse{}, fmt.Errorf("cluster: bad cell response from %s: %w", ws.url, err)
			}
			return cr, nil
		case resp.StatusCode == http.StatusServiceUnavailable:
			c.sheds.Add(1)
			if shed+1 >= c.opts.ShedBudget {
				sp.SetAttr("error", "shed budget exhausted")
				return CellResponse{}, &shedError{ws.url}
			}
			if err := sleepRetryAfter(ctx, resp.Header.Get("Retry-After")); err != nil {
				return CellResponse{}, err
			}
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			var eb errorBody
			_ = json.Unmarshal(b, &eb)
			if eb.Error == "" {
				eb.Error = string(b)
			}
			sp.SetAttr("error", eb.Error)
			return CellResponse{}, &terminalError{resp.StatusCode, eb.Error}
		default:
			err := fmt.Errorf("cluster: worker %s returned status %d", ws.url, resp.StatusCode)
			sp.SetAttr("error", err.Error())
			return CellResponse{}, err
		}
	}
}

// post issues one JSON POST under ctx.
func (c *Coordinator) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.client.Do(req)
}

// sleepRetryAfter waits the server-suggested interval (capped at 2s so a
// confused header cannot stall a sweep), or until ctx is done.
func sleepRetryAfter(ctx context.Context, header string) error {
	d := 500 * time.Millisecond
	if secs, err := strconv.Atoi(header); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WorkerStatus is one worker's row in the /debug/cluster dump.
type WorkerStatus struct {
	URL string `json:"url"`
	// Alive is the coordinator's current liveness belief (updated by probes
	// and dispatch failures).
	Alive   bool   `json:"alive"`
	LastErr string `json:"last_err,omitempty"`
	// RingShare is the fraction of the hash space this worker owns — the
	// expected share of cells assigned to it.
	RingShare float64 `json:"ring_share"`
	// Assigned counts cells whose ring owner this worker was; Done counts
	// cells it actually completed; Stolen counts cells its dispatchers took
	// from other workers' queues. Inflight is current on-the-wire dispatches.
	Assigned int64 `json:"assigned"`
	Done     int64 `json:"done"`
	Stolen   int64 `json:"stolen"`
	Inflight int64 `json:"inflight"`
}

// State is the coordinator's assignment and counter dump for /debug/cluster.
type State struct {
	Role    string         `json:"role"`
	Workers []WorkerStatus `json:"workers"`
	// Fleet store counters: a hit is a cell served without any dispatch.
	StoreHits    int64 `json:"store_hits"`
	StoreMisses  int64 `json:"store_misses"`
	StoreEntries int   `json:"store_entries"`
	// Dispatch machinery counters.
	Dispatched int64 `json:"dispatched"`
	Steals     int64 `json:"steals"`
	Retries    int64 `json:"retries"`
	Hedges     int64 `json:"hedges"`
	Sheds      int64 `json:"sheds"`
	// Fallbacks counts cells computed locally because no live worker
	// remained.
	Fallbacks int64 `json:"fallbacks"`
}

// State snapshots the coordinator for the debug surface.
func (c *Coordinator) State() State {
	st := State{
		Role:         "coordinator",
		StoreHits:    c.storeHits.Load(),
		StoreMisses:  c.storeMisses.Load(),
		StoreEntries: c.store.Len(),
		Dispatched:   c.dispatched.Load(),
		Steals:       c.steals.Load(),
		Retries:      c.retries.Load(),
		Hedges:       c.hedges.Load(),
		Sheds:        c.sheds.Load(),
		Fallbacks:    c.fallbacks.Load(),
	}
	shares := c.ringShares()
	for i, ws := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			URL:       ws.url,
			Alive:     ws.alive.Load(),
			LastErr:   ws.lastError(),
			RingShare: shares[i],
			Assigned:  ws.assigned.Load(),
			Done:      ws.done.Load(),
			Stolen:    ws.stolen.Load(),
			Inflight:  ws.inflight.Load(),
		})
	}
	return st
}

// ringShares computes each worker's owned fraction of the hash space.
func (c *Coordinator) ringShares() []float64 {
	shares := make([]float64, len(c.workers))
	n := len(c.ring.hashes)
	if n == 0 {
		return shares
	}
	const span = float64(1<<63) * 2 // 2^64 as float
	for i, h := range c.ring.hashes {
		var arc uint64
		if i == 0 {
			arc = c.ring.hashes[0] + (^c.ring.hashes[n-1] + 1) // wraparound arc
		} else {
			arc = h - c.ring.hashes[i-1]
		}
		shares[c.ring.owner[h]] += float64(arc) / span
	}
	return shares
}

// Workers lists the fleet's worker URLs with current liveness, for /healthz.
func (c *Coordinator) Workers() []WorkerStatus {
	out := make([]WorkerStatus, len(c.workers))
	for i, ws := range c.workers {
		out[i] = WorkerStatus{URL: ws.url, Alive: ws.alive.Load(), LastErr: ws.lastError()}
	}
	return out
}

// CacheCounters exposes the fleet store and sweep cache counters for
// /metrics. The store's hits/misses are the coordinator's own counters
// (lookups bypass the memo counting path).
func (c *Coordinator) CacheCounters() []memo.Counters {
	return []memo.Counters{
		{
			Name:    "fleet",
			Hits:    c.storeHits.Load(),
			Misses:  c.storeMisses.Load(),
			Entries: c.store.Len(),
		},
		c.sweeps.Counters(),
	}
}

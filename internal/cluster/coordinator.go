package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"smtflex/internal/config"
	"smtflex/internal/faults"
	"smtflex/internal/journal"
	"smtflex/internal/memo"
	"smtflex/internal/obs"
	"smtflex/internal/study"
	"smtflex/internal/workload"
)

// Options parameterizes a Coordinator. Zero values select defaults.
type Options struct {
	// Client performs worker HTTP requests (default: a plain http.Client;
	// per-attempt timeouts come from contexts, not the client).
	Client *http.Client
	// PerWorkerInflight bounds concurrent dispatches per worker (default 4).
	PerWorkerInflight int
	// AttemptTimeout caps one dispatch attempt (default 60s).
	AttemptTimeout time.Duration
	// HedgeDelay is how long a dispatch may run before a second attempt is
	// launched on a different worker (default 3s). Zero selects the default;
	// negative disables hedging.
	HedgeDelay time.Duration
	// ShedBudget is how many 503 sheds from one worker an attempt absorbs
	// (honoring Retry-After) before trying elsewhere (default 8).
	ShedBudget int
	// Replicas is the consistent-hash virtual-node count per worker
	// (default 64).
	Replicas int
	// StoreCap bounds the fleet result store in cells, LRU-evicted
	// (0 = unbounded). SweepCap does the same for assembled sweeps.
	StoreCap int
	SweepCap int
	// Journal, when non-nil, is the write-ahead cell journal: every completed
	// cell is recorded before the sweep finishes, and a restarted coordinator
	// replays the journal into its result store so only the remainder is
	// re-dispatched. The journal must be opened under this engine's
	// fingerprint (see journal.Open).
	Journal *journal.Journal
	// AuditFraction, in (0,1], enables audit mode: that fraction of cells
	// (sampled deterministically by content address) is double-dispatched to
	// a second, independent worker and the result digests compared. Any
	// divergence fails the sweep with ErrAuditDivergence. Zero disables.
	AuditFraction float64
	// BreakerThreshold is the consecutive transport-failure count that trips
	// a worker's circuit breaker open (default 3). BreakerCooldown is how
	// long an open breaker blocks traffic before half-opening for a probe
	// dispatch (default 15s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Logger receives dispatch warnings (default slog.Default()).
	Logger *slog.Logger
}

// dispatchBounds are the per-worker dispatch latency histogram buckets
// (seconds): wire round trips live in the low milliseconds, full cell
// evaluations in the tens of milliseconds to seconds.
var dispatchBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// workerState is the coordinator's view of one worker.
type workerState struct {
	url      string
	br       *breaker     // circuit breaker: the worker's health state machine
	assigned atomic.Int64 // cells whose ring owner this worker is
	done     atomic.Int64 // cells this worker completed
	stolen   atomic.Int64 // cells this worker's dispatchers stole
	inflight atomic.Int64 // dispatch attempts currently on the wire

	// Wire observability: successful-dispatch latency distribution and
	// request/response byte totals, exported per worker on /metrics.
	hist    *obs.Histogram
	txBytes atomic.Int64
	rxBytes atomic.Int64

	mu      sync.Mutex
	lastErr string
}

// fail records a transport-level failure: the error is kept for the debug
// surface and the breaker accumulates it (tripping open at threshold, or
// immediately from a half-open probe).
func (w *workerState) fail(err error) {
	w.br.failure(time.Now())
	w.mu.Lock()
	w.lastErr = err.Error()
	w.mu.Unlock()
}

func (w *workerState) lastError() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// alive reports whether the breaker would admit traffic now — the fabric's
// liveness notion on /healthz and /debug/cluster.
func (w *workerState) alive() bool {
	return w.br.allowsTraffic(time.Now())
}

// Coordinator is the fabric's control plane: it decomposes sweeps into
// content-addressed cells, dispatches them across the worker fleet with
// work-stealing and hedged retries, and reassembles bit-identical tables.
// It is safe for concurrent use; identical concurrent sweeps coalesce onto
// one fleet computation.
type Coordinator struct {
	st      *study.Study
	opts    Options
	log     *slog.Logger
	client  *http.Client
	workers []*workerState
	ring    *ring

	// store is the fleet-level content-addressed result store; hits skip
	// dispatch entirely. Counters are tracked separately (storeHits/Misses)
	// because lookups go through Cached, which the memo cache does not count.
	store  memo.Cache[string, CellResponse]
	sweeps memo.Cache[string, *study.Sweep]

	storeHits, storeMisses                                atomic.Int64
	dispatched, steals, retries, hedges, sheds, fallbacks atomic.Int64

	// flight is the sweep flight recorder behind /debug/flight; with a
	// journal configured it also dumps each finished sweep's record next to
	// the journal. Nil-safe throughout.
	flight *flightRecorder

	// Integrity and durability counters.
	integrityFailures atomic.Int64 // quarantined corrupt/mismatched responses
	audits            atomic.Int64 // cells double-dispatched by audit mode
	auditMismatches   atomic.Int64 // audit digest divergences (each fails a sweep)
	drains            atomic.Int64 // dispatches rerouted off a draining worker
	journalPuts       atomic.Int64 // cells journaled
	journalErrs       atomic.Int64 // journal writes that failed (non-fatal)
	journalReplayed   int          // records replayed into the store at startup
	journalDropped    int          // records rejected at startup (corrupt/foreign)
}

// NewCoordinator builds a Coordinator over the worker base URLs
// (e.g. "http://10.0.0.2:8080").
func NewCoordinator(st *study.Study, workerURLs []string, opts Options) (*Coordinator, error) {
	if st == nil {
		return nil, errors.New("cluster: coordinator needs a study engine")
	}
	if len(workerURLs) == 0 {
		return nil, ErrNoWorkers
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.PerWorkerInflight <= 0 {
		opts.PerWorkerInflight = 4
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 60 * time.Second
	}
	if opts.HedgeDelay == 0 {
		opts.HedgeDelay = 3 * time.Second
	}
	if opts.ShedBudget <= 0 {
		opts.ShedBudget = 8
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 15 * time.Second
	}
	if opts.AuditFraction < 0 || opts.AuditFraction > 1 {
		return nil, fmt.Errorf("cluster: audit fraction %g outside [0,1]", opts.AuditFraction)
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	c := &Coordinator{
		st:     st,
		opts:   opts,
		log:    opts.Logger,
		client: opts.Client,
		ring:   newRing(workerURLs, opts.Replicas),
	}
	for _, u := range workerURLs {
		// The breaker starts closed: optimistic until a probe or dispatch
		// says otherwise.
		c.workers = append(c.workers, &workerState{
			url:  u,
			br:   newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
			hist: obs.NewHistogram(dispatchBounds),
		})
	}
	flightDir := ""
	if opts.Journal != nil {
		flightDir = opts.Journal.Dir()
	}
	c.flight = newFlightRecorder(flightDir, func(msg string, err error) {
		c.log.Warn(msg, "err", err)
	})
	c.store.Name = "fleet"
	if opts.StoreCap > 0 {
		c.store.Bound(opts.StoreCap)
	}
	c.sweeps.Name = "fleet-sweeps"
	if opts.SweepCap > 0 {
		c.sweeps.Bound(opts.SweepCap)
	}
	if opts.Journal != nil {
		if err := c.replayJournal(opts.Journal); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// replayJournal seeds the fleet store from the write-ahead journal: every
// record that passes both the journal's at-rest digest and the wire layer's
// canonical integrity check becomes a store entry, so the next sweep serves
// those cells without dispatching. Records failing either check are dropped
// (counted, never trusted).
func (c *Coordinator) replayJournal(j *journal.Journal) error {
	rejected := 0
	replayed, dropped, err := j.Replay(func(key string, payload []byte) {
		var resp CellResponse
		if json.Unmarshal(payload, &resp) != nil {
			rejected++
			return
		}
		if verr := resp.verifyIntegrity(key); verr != nil {
			c.log.Warn("journal replay rejected record", "key", key, "err", verr)
			rejected++
			return
		}
		c.store.Put(key, resp)
	})
	if err != nil {
		return fmt.Errorf("cluster: replaying journal: %w", err)
	}
	c.journalReplayed = replayed - rejected
	c.journalDropped = dropped + rejected
	if c.journalReplayed > 0 || c.journalDropped > 0 {
		c.log.Info("journal replayed", "dir", j.Dir(),
			"cells", c.journalReplayed, "dropped", c.journalDropped)
	}
	return nil
}

// Probe checks every worker's /healthz concurrently, updating breaker state.
// A 200 closes the worker's breaker (a restarted worker rejoins the fleet at
// the next sweep or /healthz scrape); any failure trips it open immediately —
// an out-of-band health verdict, not one dispatch loss, so it bypasses the
// consecutive-failure threshold.
func (c *Coordinator) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ws := range c.workers {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			fail := func(err error) {
				ws.br.forceOpen(time.Now())
				ws.mu.Lock()
				ws.lastErr = err.Error()
				ws.mu.Unlock()
			}
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, ws.url+"/healthz", nil)
			if err != nil {
				fail(err)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				fail(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ws.br.success()
			} else {
				fail(fmt.Errorf("healthz: status %d", resp.StatusCode))
			}
		}(ws)
	}
	wg.Wait()
}

// SweepDesign runs one design sweep through the fleet. The result is
// bit-for-bit identical to study.Study.SweepDesign on the same engine
// configuration: the cells are evaluated by the same per-mix code on the
// workers and reassembled by the same study.AssembleSweep. Identical
// concurrent calls coalesce; a context-carried progress hook
// (study.WithProgress) fires per completed cell, like the local pool's.
func (c *Coordinator) SweepDesign(ctx context.Context, d config.Design, k study.Kind) (*study.Sweep, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prog := study.ProgressFrom(ctx)
	return c.sweeps.GetCtx(ctx, c.st.SweepKey(d, k), func(cctx context.Context) (*study.Sweep, error) {
		return c.computeSweep(cctx, d, k, prog)
	})
}

// cell is one dispatchable work unit of a sweep.
type cell struct {
	n, mi int
	key   string
	sweep string // content address of the owning sweep (flight recorder key)
	d     config.Design
	mix   workload.Mix
	req   CellRequest
	// attempts numbers this cell's dispatch attempts (including hedges and
	// audits) for span attribution: attempt > 1 is retry/hedge traffic.
	attempts atomic.Int64
}

// sched is the per-sweep work-stealing scheduler: one queue per worker,
// populated by ring ownership. Dispatchers pop their own queue first and
// steal from the tail of other workers' queues when theirs runs dry, so a
// straggling or dead worker's cells drain through the rest of the fleet.
type sched struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queues      [][]*cell
	pending     int
	outstanding int
	done        int // completed cells, including store prefills
	err         error
	stopped     bool
}

func newSched(nWorkers, prefilled int) *sched {
	s := &sched{queues: make([][]*cell, nWorkers), done: prefilled}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push enqueues a cell on its owner's queue.
func (s *sched) push(owner int, cl *cell) {
	s.mu.Lock()
	s.queues[owner] = append(s.queues[owner], cl)
	s.pending++
	s.mu.Unlock()
}

// next blocks until a cell is available, preferring self's queue and
// stealing from others' tails otherwise. It returns nil when the sweep is
// finished, failed or stopped.
func (s *sched) next(self int) (cl *cell, stolen bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.stopped {
			return nil, false
		}
		if q := s.queues[self]; len(q) > 0 {
			cl, s.queues[self] = q[0], q[1:]
			s.pending--
			s.outstanding++
			return cl, false
		}
		for off := 1; off < len(s.queues); off++ {
			j := (self + off) % len(s.queues)
			if q := s.queues[j]; len(q) > 0 {
				cl, s.queues[j] = q[len(q)-1], q[:len(q)-1]
				s.pending--
				s.outstanding++
				return cl, true
			}
		}
		if s.pending == 0 && s.outstanding == 0 {
			return nil, false
		}
		s.cond.Wait()
	}
}

// complete marks one cell finished and returns the completed count.
func (s *sched) complete() int {
	s.mu.Lock()
	s.outstanding--
	s.done++
	done := s.done
	if s.pending == 0 && s.outstanding == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	return done
}

// fail records the sweep's terminal error and wakes every dispatcher.
func (s *sched) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.outstanding--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// stop wakes every dispatcher so they observe cancellation.
func (s *sched) stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *sched) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// computeSweep decomposes, dispatches and reassembles one sweep.
func (c *Coordinator) computeSweep(ctx context.Context, d config.Design, k study.Kind, prog study.ProgressFunc) (_ *study.Sweep, err error) {
	ctx, sp := obs.StartSpan(ctx, "cluster.sweep")
	sp.SetAttr("design", d.Name)
	sp.SetAttr("kind", k.String())
	defer sp.End()

	sweepID := memo.KeyHash(c.st.SweepKey(d, k))
	c.Probe(ctx)
	mixes, nMixes, err := c.st.SweepMixes(k)
	if err != nil {
		return nil, err
	}
	total := study.MaxThreads * nMixes
	results := make([][]study.MixResult, study.MaxThreads)
	for i := range results {
		results[i] = make([]study.MixResult, nMixes)
	}

	// Decompose into cells, serving what the fleet store already holds.
	fingerprint := c.st.Fingerprint()
	var cells []*cell
	for n := 1; n <= study.MaxThreads; n++ {
		for mi := 0; mi < nMixes; mi++ {
			mix := mixes[n][mi]
			key := memo.KeyHash(c.st.CellKey(d, k, n, mix))
			if resp, ok := c.store.Cached(key); ok {
				c.storeHits.Add(1)
				results[n-1][mi] = fromWire(resp)
				continue
			}
			c.storeMisses.Add(1)
			cells = append(cells, &cell{
				n: n, mi: mi, key: key, sweep: sweepID, d: d, mix: mix,
				req: CellRequest{
					Key:           key,
					Fingerprint:   fingerprint,
					Design:        d.Name,
					SMT:           d.SMTEnabled,
					BandwidthGBps: d.MemBandwidthGBps,
					Kind:          k.String(),
					N:             n,
					MixID:         mix.ID,
					Programs:      mix.Programs,
				},
			})
		}
	}
	prefilled := total - len(cells)
	sp.SetAttr("cells", total)
	sp.SetAttr("store_hits", prefilled)
	sp.SetAttr("sweep_id", sweepID)
	c.flight.begin(sweepID, d.Name, k.String(), total, prefilled)
	defer func() { c.flight.end(sweepID, err) }()
	for _, cl := range cells {
		c.flight.register(sweepID, cl.key, cl.n, cl.mix.ID)
	}
	if prog != nil && prefilled > 0 {
		prog(prefilled, total)
	}
	if len(cells) == 0 {
		return study.AssembleSweep(d, k, mixes, results)
	}

	sc := newSched(len(c.workers), prefilled)
	for _, cl := range cells {
		owner := c.ring.ownerOf(cl.key)
		c.workers[owner].assigned.Add(1)
		sc.push(owner, cl)
	}

	// Wake dispatchers blocked in next() if the caller goes away.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sc.stop()
		case <-watchDone:
		}
	}()
	defer close(watchDone)

	var mu sync.Mutex // guards results writes (distinct slots, but keep the race detector honest)
	var wg sync.WaitGroup
	for wi := range c.workers {
		for slot := 0; slot < c.opts.PerWorkerInflight; slot++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				for {
					cl, stolen := sc.next(wi)
					if cl == nil {
						return
					}
					if stolen {
						c.steals.Add(1)
						c.workers[wi].stolen.Add(1)
						c.flight.event(cl.key, FlightStolen, c.workers[wi].url, "")
					}
					resp, err := c.processCell(ctx, cl, wi, stolen)
					if err != nil {
						sc.fail(err)
						return
					}
					c.store.Put(cl.key, resp)
					c.journalCell(cl.key, resp)
					mu.Lock()
					results[cl.n-1][cl.mi] = fromWire(resp)
					mu.Unlock()
					done := sc.complete()
					if prog != nil {
						prog(done, total)
					}
				}
			}(wi)
		}
	}
	wg.Wait()
	if err := sc.failure(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return study.AssembleSweep(d, k, mixes, results)
}

// journalCell write-ahead-records one completed cell. A journal write
// failure is logged and counted but does not fail the sweep: the journal is
// a recovery optimization, and losing one record only means re-evaluating
// that cell after a crash.
func (c *Coordinator) journalCell(key string, resp CellResponse) {
	if c.opts.Journal == nil {
		return
	}
	payload, err := json.Marshal(resp)
	if err == nil {
		err = c.opts.Journal.Put(key, payload)
	}
	if err != nil {
		c.journalErrs.Add(1)
		c.log.Warn("journal write failed", "key", key, "err", err)
		return
	}
	c.journalPuts.Add(1)
}

// terminalError marks failures no retry can fix: the request itself is bad
// (unknown design, fingerprint mismatch) or the engine rejected the cell.
type terminalError struct {
	status int
	msg    string
}

func (e *terminalError) Error() string {
	return fmt.Sprintf("cluster: worker rejected cell (status %d): %s", e.status, e.msg)
}

// shedError marks a worker that kept shedding (503) past the budget; the
// worker is healthy but saturated, so it is skipped for this cell without
// a breaker penalty.
type shedError struct{ worker string }

func (e *shedError) Error() string {
	return fmt.Sprintf("cluster: worker %s shedding past budget", e.worker)
}

// drainError marks a worker that answered 503 with the draining header: it
// is shutting down gracefully. The cell reroutes to another worker
// immediately — no shed budget, no breaker penalty.
type drainError struct{ worker string }

func (e *drainError) Error() string {
	return fmt.Sprintf("cluster: worker %s draining for shutdown", e.worker)
}

// integrityError marks a response that failed verification: wrong key, bad
// JSON, missing digest, or digest mismatch. The response is quarantined
// (never stored, never assembled) and the cell re-dispatched to a different
// worker; the offender takes a breaker failure.
type integrityError struct {
	worker string
	reason string
}

func (e *integrityError) Error() string {
	return fmt.Sprintf("cluster: quarantined response from %s: %s", e.worker, e.reason)
}

// breakerDeniedError marks a dispatch blocked by an open breaker (or a
// half-open probe slot already held). Neutral: the worker was not contacted.
type breakerDeniedError struct{ worker string }

func (e *breakerDeniedError) Error() string {
	return fmt.Sprintf("cluster: worker %s breaker open", e.worker)
}

// neutralDispatchError reports whether err says nothing about the target
// worker's transport health: sheds, drains, breaker denials and terminal
// request rejections must not trip the breaker.
func neutralDispatchError(err error) bool {
	var se *shedError
	var de *drainError
	var be *breakerDeniedError
	var te *terminalError
	return errors.As(err, &se) || errors.As(err, &de) || errors.As(err, &be) || errors.As(err, &te)
}

// processCell drives one cell to completion: preferred worker first, hedged
// against stragglers, retried on other live workers after a loss, and
// computed locally when the whole fleet is gone — a sweep never stalls on a
// dead fleet.
func (c *Coordinator) processCell(ctx context.Context, cl *cell, self int, stolen bool) (CellResponse, error) {
	ctx, sp := obs.StartSpan(ctx, "cluster.cell")
	sp.SetAttr("key", cl.key)
	sp.SetAttr("n", cl.n)
	sp.SetAttr("mix", cl.mix.ID)
	if stolen {
		sp.SetAttr("stolen", true)
	}
	defer sp.End()

	tried := make(map[int]bool)
	target := self
	if !c.workers[self].alive() {
		target = c.pickLive(tried)
	}
	for {
		if err := ctx.Err(); err != nil {
			return CellResponse{}, err
		}
		if target < 0 {
			// No untried live worker remains: compute the cell locally so the
			// sweep still converges (counted, spanned, and identical by
			// construction — it is the same EvaluateMixCtx the workers run).
			c.fallbacks.Add(1)
			c.flight.event(cl.key, FlightFallback, "", "")
			_, fsp := obs.StartSpan(ctx, "cluster.fallback")
			fsp.SetAttr("key", cl.key)
			r, err := c.st.EvaluateMixCtx(ctx, cl.d, cl.mix)
			fsp.End()
			if err != nil {
				return CellResponse{}, fmt.Errorf("cluster: local fallback for %s: %w", cl.mix.ID, err)
			}
			c.flight.complete(cl.sweep, cl.key, "")
			return toWire(cl.key, r), nil
		}
		tried[target] = true
		resp, winner, err := c.dispatchHedged(ctx, cl, target)
		if err == nil {
			c.workers[winner].done.Add(1)
			sp.SetAttr("worker", c.workers[winner].url)
			if aerr := c.audit(ctx, cl, resp, winner); aerr != nil {
				return CellResponse{}, aerr
			}
			c.flight.complete(cl.sweep, cl.key, c.workers[winner].url)
			return resp, nil
		}
		var te *terminalError
		if errors.As(err, &te) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return CellResponse{}, err
		}
		// Transport loss, quarantine, shed budget or drain: try the next
		// live worker. A quarantined response must re-dispatch to a
		// *different* worker, which tried already guarantees.
		c.retries.Add(1)
		c.flight.event(cl.key, FlightRetried, c.workers[target].url, err.Error())
		c.log.Warn("cell re-dispatch", "key", cl.key, "worker", c.workers[target].url, "err", err)
		target = c.pickLive(tried)
	}
}

// auditSampled reports whether audit mode double-checks this cell. The
// sample is a deterministic function of the content address — the cell's
// first 32 key bits against the fraction — so reruns and resumed sweeps
// audit the same cells.
func (c *Coordinator) auditSampled(key string) bool {
	frac := c.opts.AuditFraction
	if frac <= 0 || len(key) < 8 {
		return false
	}
	v, err := strconv.ParseUint(key[:8], 16, 64)
	if err != nil {
		return false
	}
	return float64(v) < frac*float64(1<<32)
}

// audit double-dispatches a sampled cell to a worker other than the one
// that answered and diffs the result digests. Agreement is silent;
// divergence is a hard sweep failure (ErrAuditDivergence) — two independent
// engines disagreeing means one of them is wrong, and no table should be
// assembled from either. With no second worker available the audit is
// skipped (logged), never faked.
func (c *Coordinator) audit(ctx context.Context, cl *cell, resp CellResponse, winner int) error {
	if !c.auditSampled(cl.key) {
		return nil
	}
	aw := c.pickLive(map[int]bool{winner: true})
	if aw < 0 {
		c.log.Warn("audit skipped: no independent worker", "key", cl.key)
		return nil
	}
	c.audits.Add(1)
	_, sp := obs.StartSpan(ctx, "cluster.audit")
	sp.SetAttr("key", cl.key)
	sp.SetAttr("worker", c.workers[aw].url)
	aresp, err := c.attempt(ctx, cl, aw)
	sp.End()
	if err != nil {
		// The audit dispatch itself failed (worker lost, shedding): the
		// primary result stands — an audit is a check, not a dependency.
		c.log.Warn("audit dispatch failed", "key", cl.key, "worker", c.workers[aw].url, "err", err)
		return nil
	}
	if aresp.Digest != resp.Digest {
		c.auditMismatches.Add(1)
		return fmt.Errorf("%w: cell %s: %s returned %s, %s returned %s",
			ErrAuditDivergence, cl.key,
			c.workers[winner].url, resp.Digest, c.workers[aw].url, aresp.Digest)
	}
	return nil
}

// pickLive returns a live worker index not in tried, or -1. It prefers the
// least-loaded (fewest inflight dispatches) so hedges and retries spread;
// liveness is the breaker's verdict, so an open breaker hides a worker until
// its cooldown half-opens it.
func (c *Coordinator) pickLive(tried map[int]bool) int {
	now := time.Now()
	best, bestLoad := -1, int64(0)
	for i, ws := range c.workers {
		if tried[i] || !ws.br.allowsTraffic(now) {
			continue
		}
		load := ws.inflight.Load()
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// dispatchHedged runs one dispatch attempt against primary, launching a
// second attempt on a different live worker if the first exceeds the hedge
// delay; the first success wins (its worker index is returned) and the
// loser's request is cancelled. Breaker verdicts are recorded inside
// attempt, by the goroutine that owns each dispatch — a lost hedge's
// verdict still lands even though its channel send is never read.
func (c *Coordinator) dispatchHedged(ctx context.Context, cl *cell, primary int) (CellResponse, int, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type out struct {
		resp   CellResponse
		err    error
		worker int
	}
	ch := make(chan out, 2)
	launch := func(wi int) {
		go func() {
			resp, err := c.attempt(hctx, cl, wi)
			ch <- out{resp, err, wi}
		}()
	}
	launch(primary)
	inflight := 1
	hedged := false

	var hedgeC <-chan time.Time
	if c.opts.HedgeDelay > 0 {
		timer := time.NewTimer(c.opts.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var lastErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				return o.resp, o.worker, nil
			}
			lastErr = o.err
			var te *terminalError
			if errors.As(o.err, &te) {
				return CellResponse{}, -1, o.err
			}
			if inflight > 0 {
				continue // a hedge is still running; it may yet win
			}
			return CellResponse{}, -1, lastErr
		case <-hedgeC:
			hedgeC = nil
			if hedged {
				continue
			}
			if backup := c.pickLive(map[int]bool{primary: true}); backup >= 0 {
				hedged = true
				c.hedges.Add(1)
				c.flight.event(cl.key, FlightHedged, c.workers[backup].url, "")
				_, hsp := obs.StartSpan(hctx, "cluster.hedge")
				hsp.SetAttr("key", cl.key)
				hsp.SetAttr("worker", c.workers[backup].url)
				hsp.End()
				launch(backup)
				inflight++
			}
		case <-hctx.Done():
			return CellResponse{}, -1, hctx.Err()
		}
	}
}

// attempt performs one HTTP dispatch of a cell to one worker, absorbing up
// to the shed budget of 503s (honoring jittered Retry-After). It owns the
// worker's breaker interaction end to end: acquire before the dispatch,
// verdict after — success closes, transport loss and quarantine count as
// failures, and neutral outcomes (shed, drain, terminal, cancelled hedge)
// release any held probe slot without a verdict.
func (c *Coordinator) attempt(ctx context.Context, cl *cell, wi int) (resp CellResponse, err error) {
	ws := c.workers[wi]
	// The dispatch span stays in ctx: post propagates it as the traceparent,
	// so the worker's subtree grafts back under exactly this span.
	ctx, sp := obs.StartSpan(ctx, "cluster.dispatch")
	sp.SetAttr("worker", ws.url)
	sp.SetAttr("key", cl.key)
	sp.SetAttr("attempt", cl.attempts.Add(1))
	defer sp.End()
	if !ws.br.tryAcquire(time.Now()) {
		return CellResponse{}, &breakerDeniedError{ws.url}
	}
	defer func() {
		switch {
		case err == nil:
			ws.br.success()
		case neutralDispatchError(err), ctx.Err() != nil:
			// Sheds, drains and terminal rejections say nothing about
			// transport health; a cancelled context (lost hedge race, sweep
			// cancel) makes any error unattributable. Free the probe slot.
			ws.br.release()
		default:
			ws.fail(err)
		}
	}()
	if err := faults.Check(faults.SiteDispatch); err != nil {
		sp.SetAttr("error", err.Error())
		return CellResponse{}, err
	}
	body, err := json.Marshal(cl.req)
	if err != nil {
		return CellResponse{}, &terminalError{0, err.Error()}
	}
	c.dispatched.Add(1)
	c.flight.event(cl.key, FlightDispatched, ws.url, "")
	ws.inflight.Add(1)
	defer ws.inflight.Add(-1)

	for shed := 0; ; shed++ {
		t0 := time.Now()
		actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
		ws.txBytes.Add(int64(len(body)))
		hresp, err := c.post(actx, ws.url+CellPath, body)
		if err != nil {
			cancel()
			sp.SetAttr("error", err.Error())
			return CellResponse{}, err
		}
		b, rerr := io.ReadAll(io.LimitReader(hresp.Body, 8<<20))
		hresp.Body.Close()
		cancel()
		rtt := time.Since(t0)
		ws.rxBytes.Add(int64(len(b)))
		if rerr != nil {
			sp.SetAttr("error", rerr.Error())
			return CellResponse{}, rerr
		}
		switch {
		case hresp.StatusCode == http.StatusOK:
			// The wire fault site corrupts the received bytes here, upstream
			// of all verification — exactly where a real network fault or
			// lying worker would land.
			b = faults.Mangle(faults.SiteWire, b)
			var cr CellResponse
			if err := json.Unmarshal(b, &cr); err != nil {
				c.integrityFailures.Add(1)
				ierr := &integrityError{ws.url, fmt.Sprintf("undecodable response: %v", err)}
				c.flight.event(cl.key, FlightQuarantined, ws.url, "undecodable response")
				sp.SetAttr("error", ierr.Error())
				return CellResponse{}, ierr
			}
			if err := cr.verifyIntegrity(cl.key); err != nil {
				c.integrityFailures.Add(1)
				ierr := &integrityError{ws.url, err.Error()}
				c.flight.event(cl.key, FlightQuarantined, ws.url, err.Error())
				sp.SetAttr("error", ierr.Error())
				return CellResponse{}, ierr
			}
			ws.hist.Observe(rtt.Seconds())
			c.flight.attemptDone(cl.key, ws.url, rtt, cr.ComputeNs)
			if cr.Trace != nil {
				// Stitch the worker's subtree under this dispatch span, then
				// strip it: the spans now live in the coordinator's trace, and
				// the store/journal keep only the digest-covered payload (plus
				// compute_ns, which is digest-exempt).
				sp.Graft(time.Unix(0, cr.Trace.StartUnixNs), cr.Trace.Spans, ws.url)
				cr.Trace = nil
			}
			return cr, nil
		case hresp.StatusCode == http.StatusServiceUnavailable:
			if hresp.Header.Get(DrainingHeader) != "" {
				c.drains.Add(1)
				sp.SetAttr("error", "worker draining")
				return CellResponse{}, &drainError{ws.url}
			}
			c.sheds.Add(1)
			if shed+1 >= c.opts.ShedBudget {
				sp.SetAttr("error", "shed budget exhausted")
				return CellResponse{}, &shedError{ws.url}
			}
			if err := sleepRetryAfter(ctx, hresp.Header.Get("Retry-After")); err != nil {
				return CellResponse{}, err
			}
		case hresp.StatusCode >= 400 && hresp.StatusCode < 500:
			var eb errorBody
			_ = json.Unmarshal(b, &eb)
			if eb.Error == "" {
				eb.Error = string(b)
			}
			sp.SetAttr("error", eb.Error)
			return CellResponse{}, &terminalError{hresp.StatusCode, eb.Error}
		default:
			err := fmt.Errorf("cluster: worker %s returned status %d", ws.url, hresp.StatusCode)
			sp.SetAttr("error", err.Error())
			return CellResponse{}, err
		}
	}
}

// post issues one JSON POST under ctx, propagating the request's
// observability identity: the sweep caller's request ID (workers reuse it in
// their logs and echo it on 503s) and the current trace context (workers
// adopt it so their spans stitch into the coordinator's trace).
func (c *Coordinator) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if rid := obs.RequestID(ctx); rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	if tid, sid := obs.Traceparent(ctx); tid != "" {
		req.Header.Set(TraceparentHeader, obs.FormatTraceparent(tid, sid))
	}
	return c.client.Do(req)
}

// sleepRetryAfter waits the server-suggested interval (capped at 2s so a
// confused header cannot stall a sweep), or until ctx is done.
func sleepRetryAfter(ctx context.Context, header string) error {
	d := 500 * time.Millisecond
	if secs, err := strconv.Atoi(header); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WorkerStatus is one worker's row in the /debug/cluster dump.
type WorkerStatus struct {
	URL string `json:"url"`
	// Alive is the coordinator's current liveness belief: whether the
	// worker's circuit breaker would admit traffic now.
	Alive bool `json:"alive"`
	// Breaker is the breaker's position — "closed", "open" or "half-open" —
	// BreakerTrips its lifetime open transitions, and BreakerSince when it
	// entered its current position (so a flight record can be read against
	// breaker history: "open since 12:03:07" explains a burst of retries).
	Breaker      string    `json:"breaker"`
	BreakerTrips int64     `json:"breaker_trips"`
	BreakerSince time.Time `json:"breaker_since"`
	LastErr      string    `json:"last_err,omitempty"`
	// RingShare is the fraction of the hash space this worker owns — the
	// expected share of cells assigned to it.
	RingShare float64 `json:"ring_share"`
	// Assigned counts cells whose ring owner this worker was; Done counts
	// cells it actually completed; Stolen counts cells its dispatchers took
	// from other workers' queues. Inflight is current on-the-wire dispatches.
	Assigned int64 `json:"assigned"`
	Done     int64 `json:"done"`
	Stolen   int64 `json:"stolen"`
	Inflight int64 `json:"inflight"`
	// TxBytes/RxBytes are dispatch request/response wire totals to/from this
	// worker.
	TxBytes int64 `json:"tx_bytes"`
	RxBytes int64 `json:"rx_bytes"`
}

// State is the coordinator's assignment and counter dump for /debug/cluster.
type State struct {
	Role    string         `json:"role"`
	Workers []WorkerStatus `json:"workers"`
	// Fleet store counters: a hit is a cell served without any dispatch.
	StoreHits    int64 `json:"store_hits"`
	StoreMisses  int64 `json:"store_misses"`
	StoreEntries int   `json:"store_entries"`
	// Dispatch machinery counters.
	Dispatched int64 `json:"dispatched"`
	Steals     int64 `json:"steals"`
	Retries    int64 `json:"retries"`
	Hedges     int64 `json:"hedges"`
	Sheds      int64 `json:"sheds"`
	// Fallbacks counts cells computed locally because no live worker
	// remained.
	Fallbacks int64 `json:"fallbacks"`
	// Integrity and durability counters.
	IntegrityFailures int64 `json:"integrity_failures"`
	Audits            int64 `json:"audits"`
	AuditMismatches   int64 `json:"audit_mismatches"`
	Drains            int64 `json:"drains"`
	// Journal state: Journaled is the live record count (0 with no journal),
	// JournalReplayed/JournalDropped the startup replay outcome, and
	// JournalErrs failed journal writes since start.
	Journaled       int   `json:"journaled"`
	JournalReplayed int   `json:"journal_replayed"`
	JournalDropped  int   `json:"journal_dropped"`
	JournalErrs     int64 `json:"journal_errs"`
}

// State snapshots the coordinator for the debug surface.
func (c *Coordinator) State() State {
	st := State{
		Role:         "coordinator",
		StoreHits:    c.storeHits.Load(),
		StoreMisses:  c.storeMisses.Load(),
		StoreEntries: c.store.Len(),
		Dispatched:   c.dispatched.Load(),
		Steals:       c.steals.Load(),
		Retries:      c.retries.Load(),
		Hedges:       c.hedges.Load(),
		Sheds:        c.sheds.Load(),
		Fallbacks:    c.fallbacks.Load(),

		IntegrityFailures: c.integrityFailures.Load(),
		Audits:            c.audits.Load(),
		AuditMismatches:   c.auditMismatches.Load(),
		Drains:            c.drains.Load(),
		JournalReplayed:   c.journalReplayed,
		JournalDropped:    c.journalDropped,
		JournalErrs:       c.journalErrs.Load(),
	}
	if c.opts.Journal != nil {
		st.Journaled = c.opts.Journal.Len()
	}
	shares := c.ringShares()
	for i, ws := range c.workers {
		brState, brTrips, brSince := ws.br.snapshot()
		st.Workers = append(st.Workers, WorkerStatus{
			URL:          ws.url,
			Alive:        ws.alive(),
			Breaker:      brState.String(),
			BreakerTrips: brTrips,
			BreakerSince: brSince,
			LastErr:      ws.lastError(),
			RingShare:    shares[i],
			Assigned:     ws.assigned.Load(),
			Done:         ws.done.Load(),
			Stolen:       ws.stolen.Load(),
			Inflight:     ws.inflight.Load(),
			TxBytes:      ws.txBytes.Load(),
			RxBytes:      ws.rxBytes.Load(),
		})
	}
	return st
}

// ringShares computes each worker's owned fraction of the hash space.
func (c *Coordinator) ringShares() []float64 {
	shares := make([]float64, len(c.workers))
	n := len(c.ring.hashes)
	if n == 0 {
		return shares
	}
	const span = float64(1<<63) * 2 // 2^64 as float
	for i, h := range c.ring.hashes {
		var arc uint64
		if i == 0 {
			arc = c.ring.hashes[0] + (^c.ring.hashes[n-1] + 1) // wraparound arc
		} else {
			arc = h - c.ring.hashes[i-1]
		}
		shares[c.ring.owner[h]] += float64(arc) / span
	}
	return shares
}

// Workers lists the fleet's worker URLs with current liveness and breaker
// state, for /healthz.
func (c *Coordinator) Workers() []WorkerStatus {
	out := make([]WorkerStatus, len(c.workers))
	for i, ws := range c.workers {
		brState, brTrips, brSince := ws.br.snapshot()
		out[i] = WorkerStatus{
			URL: ws.url, Alive: ws.alive(),
			Breaker: brState.String(), BreakerTrips: brTrips, BreakerSince: brSince,
			LastErr: ws.lastError(),
		}
	}
	return out
}

// DispatchStat is one worker's wire-level dispatch statistics for /metrics:
// the latency distribution of successful dispatches plus byte totals.
type DispatchStat struct {
	Worker  string
	Latency obs.HistogramSnapshot
	TxBytes int64
	RxBytes int64
}

// DispatchStats snapshots every worker's dispatch latency histogram and wire
// byte counters, in fleet order.
func (c *Coordinator) DispatchStats() []DispatchStat {
	out := make([]DispatchStat, len(c.workers))
	for i, ws := range c.workers {
		out[i] = DispatchStat{
			Worker:  ws.url,
			Latency: ws.hist.Snapshot(),
			TxBytes: ws.txBytes.Load(),
			RxBytes: ws.rxBytes.Load(),
		}
	}
	return out
}

// FlightList returns the flight recorder's sweep summaries, active sweeps
// first, then completed ones newest-first.
func (c *Coordinator) FlightList() []FlightMeta { return c.flight.list() }

// FlightRecordFor returns one sweep's flight record by content address (or
// unique ≥8-char prefix).
func (c *Coordinator) FlightRecordFor(sweep string) (*FlightRecord, bool) { return c.flight.get(sweep) }

// CacheCounters exposes the fleet store and sweep cache counters for
// /metrics. The store's hits/misses are the coordinator's own counters
// (lookups bypass the memo counting path).
func (c *Coordinator) CacheCounters() []memo.Counters {
	return []memo.Counters{
		{
			Name:    "fleet",
			Hits:    c.storeHits.Load(),
			Misses:  c.storeMisses.Load(),
			Entries: c.store.Len(),
		},
		c.sweeps.Counters(),
	}
}

package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring mapping cell content hashes to worker
// indices. Each worker contributes `replicas` virtual nodes; a key is owned
// by the first virtual node clockwise of its hash. Consistency matters for
// two reasons: repeated sweeps route the same cell to the same worker (so
// its local content store hits), and adding or removing one worker remaps
// only ~1/N of the cells instead of reshuffling everything.
type ring struct {
	hashes []uint64 // sorted virtual-node positions
	owner  map[uint64]int
}

// defaultReplicas is the virtual-node count per worker; 64 keeps the
// expected load imbalance across a handful of workers in the few-percent
// range at negligible memory cost.
const defaultReplicas = 64

// newRing builds the ring over the worker URLs (index-identified).
func newRing(workers []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{owner: make(map[uint64]int, len(workers)*replicas)}
	for i, w := range workers {
		for v := 0; v < replicas; v++ {
			h := hash64(w + "#" + strconv.Itoa(v))
			// On the (vanishingly rare) collision the lower worker index
			// wins deterministically, so every process agrees.
			if prev, ok := r.owner[h]; ok && prev <= i {
				continue
			}
			if _, ok := r.owner[h]; !ok {
				r.hashes = append(r.hashes, h)
			}
			r.owner[h] = i
		}
	}
	sort.Slice(r.hashes, func(a, b int) bool { return r.hashes[a] < r.hashes[b] })
	return r
}

// ownerOf returns the worker index owning key.
func (r *ring) ownerOf(key string) int {
	if len(r.hashes) == 0 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[r.hashes[i]]
}

// hash64 is FNV-1a over the string — fast, dependency-free, and stable
// across processes (unlike Go's seeded maphash).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smtflex/internal/config"
	"smtflex/internal/core"
	"smtflex/internal/obs"
	"smtflex/internal/study"
)

// The equivalence tests' whole point: a sweep through the fleet must be
// float-for-float identical to the single-process engine, at any fleet size
// and through chaos. All engines here are constructed identically so the
// comparison is meaningful.
func testSimOpts() []core.Option {
	return []core.Option{core.WithUopCount(60_000), core.WithMixesPerCount(2)}
}

var (
	simOnce sync.Once
	sim     *core.Simulator
)

// sharedSim is the one engine behind every test — profiling a fresh engine
// is expensive under -race, and sharing one keeps fingerprints aligned.
func sharedSim() *core.Simulator {
	simOnce.Do(func() { sim = core.NewSimulator(testSimOpts()...) })
	return sim
}

var (
	localOnce  sync.Once
	localBytes []byte
	localErr   error
)

// localSweepJSON is the single-process golden table the fleet must match.
func localSweepJSON(t *testing.T) []byte {
	t.Helper()
	localOnce.Do(func() {
		sw, err := sharedSim().Study().SweepDesign(context.Background(), testDesign(), study.Heterogeneous)
		if err != nil {
			localErr = err
			return
		}
		localBytes, localErr = json.Marshal(sw)
	})
	if localErr != nil {
		t.Fatalf("local sweep: %v", localErr)
	}
	return localBytes
}

func testDesign() config.Design {
	d, err := config.DesignByName("4B", true)
	if err != nil {
		panic(err) // test setup; design table is static
	}
	return d
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newWorkerServer stands up one fabric worker over httptest with the same
// minimal HTTP shape the daemon's worker role exposes: CellPath plus
// /healthz, including remote-trace adoption and the response observability
// envelope. An optional wrap intercepts requests for chaos injection.
func newWorkerServer(t *testing.T, wrap func(next http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	wk := NewWorker(sharedSim().Study(), 0)
	col := obs.NewCollector(8)
	mux := http.NewServeMux()
	mux.HandleFunc(CellPath, func(rw http.ResponseWriter, r *http.Request) {
		// Mirror the daemon's worker role: adopt the coordinator's propagated
		// trace context so the evaluation's spans ride home in the response
		// and graft under the dispatch span that carried the cell.
		ctx := r.Context()
		var root *obs.Span
		if tid, sid, ok := obs.ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
			ctx, root = obs.StartRemoteTrace(ctx, col, CellPath, tid, sid)
		}
		defer root.End()
		var req CellRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			rw.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(rw).Encode(errorBody{err.Error()}) //nolint:errcheck
			return
		}
		t0 := time.Now()
		resp, err := wk.Evaluate(ctx, req)
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrFingerprintMismatch) {
				code = http.StatusConflict
			}
			rw.WriteHeader(code)
			json.NewEncoder(rw).Encode(errorBody{err.Error()}) //nolint:errcheck
			return
		}
		AttachTrace(ctx, &resp, time.Since(t0).Nanoseconds())
		json.NewEncoder(rw).Encode(resp) //nolint:errcheck
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	var h http.Handler = mux
	if wrap != nil {
		h = wrap(mux)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func testOptions() Options {
	return Options{Logger: quietLogger(), HedgeDelay: -1}
}

func newTestCoordinator(t *testing.T, urls []string, opts Options) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(sharedSim().Study(), urls, opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

func fleetSweepJSON(t *testing.T, c *Coordinator) []byte {
	t.Helper()
	sw, err := c.SweepDesign(context.Background(), testDesign(), study.Heterogeneous)
	if err != nil {
		t.Fatalf("fleet SweepDesign: %v", err)
	}
	b, err := json.Marshal(sw)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestSweepEquivalenceAcrossFleetSizes is the contract test: the same sweep
// through 1, 2 and 4 workers is byte-identical to the single-process table.
func TestSweepEquivalenceAcrossFleetSizes(t *testing.T) {
	want := localSweepJSON(t)
	for _, nWorkers := range []int{1, 2, 4} {
		var urls []string
		for i := 0; i < nWorkers; i++ {
			urls = append(urls, newWorkerServer(t, nil).URL)
		}
		c := newTestCoordinator(t, urls, testOptions())
		got := fleetSweepJSON(t, c)
		if string(got) != string(want) {
			t.Errorf("fleet of %d: sweep differs from single-process table", nWorkers)
		}
		st := c.State()
		if st.Dispatched == 0 {
			t.Errorf("fleet of %d: no cells dispatched", nWorkers)
		}
		if st.Fallbacks != 0 {
			t.Errorf("fleet of %d: unexpected local fallbacks: %d", nWorkers, st.Fallbacks)
		}
	}
}

// TestChaosWorkerLossConverges kills one of two workers mid-sweep (its
// connection aborts after a few cells) and asserts the sweep still converges
// byte-identical — the dead worker's cells drain through the survivor.
func TestChaosWorkerLossConverges(t *testing.T) {
	want := localSweepJSON(t)
	var served atomic.Int64
	dying := newWorkerServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, CellPath) && served.Add(1) > 3 {
				panic(http.ErrAbortHandler) // simulated process death: connection drops
			}
			next.ServeHTTP(rw, r)
		})
	})
	healthy := newWorkerServer(t, nil)
	c := newTestCoordinator(t, []string{dying.URL, healthy.URL}, testOptions())
	got := fleetSweepJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("sweep after mid-sweep worker loss differs from single-process table")
	}
	st := c.State()
	if st.Retries == 0 {
		t.Error("expected re-dispatches after worker loss")
	}
	var deadSeen bool
	for _, w := range st.Workers {
		if w.URL == dying.URL && !w.Alive {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Error("dying worker not marked dead in coordinator state")
	}
}

// TestShedsAreRetriedNotFatal fronts a worker with an admission valve that
// 503s the first few cells; the coordinator must honor Retry-After and
// still produce the identical table.
func TestShedsAreRetriedNotFatal(t *testing.T) {
	want := localSweepJSON(t)
	var sheds atomic.Int64
	shedding := newWorkerServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, CellPath) && sheds.Add(1) <= 2 {
				rw.Header().Set("Retry-After", "1")
				rw.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(rw, r)
		})
	})
	c := newTestCoordinator(t, []string{shedding.URL}, testOptions())
	got := fleetSweepJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("sweep through shedding worker differs from single-process table")
	}
	if c.State().Sheds == 0 {
		t.Error("expected shed counter to advance")
	}
}

// TestAllWorkersDeadFallsBackLocally points the coordinator at a closed
// server: every dispatch fails, and the coordinator must compute the whole
// sweep locally — still byte-identical.
func TestAllWorkersDeadFallsBackLocally(t *testing.T) {
	want := localSweepJSON(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing is listening; dispatches get transport errors
	c := newTestCoordinator(t, []string{dead.URL}, testOptions())
	got := fleetSweepJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("local-fallback sweep differs from single-process table")
	}
	st := c.State()
	if st.Fallbacks == 0 {
		t.Error("expected local fallbacks with a dead fleet")
	}
}

// TestFleetStoreServesRepeatCells re-runs the same decomposition against the
// coordinator's content-addressed store: every cell must hit, with zero
// dispatches beyond the first pass.
func TestFleetStoreServesRepeatCells(t *testing.T) {
	want := localSweepJSON(t)
	ws := newWorkerServer(t, nil)
	c := newTestCoordinator(t, []string{ws.URL}, testOptions())
	if got := fleetSweepJSON(t, c); string(got) != string(want) {
		t.Fatal("first pass differs from single-process table")
	}
	dispatchedAfterFirst := c.State().Dispatched
	// Bypass the sweep-level cache to force a fresh decomposition; every
	// cell must now be served by the fleet store.
	sw, err := c.computeSweep(context.Background(), testDesign(), study.Heterogeneous, nil)
	if err != nil {
		t.Fatalf("second pass: %v", err)
	}
	b, _ := json.Marshal(sw)
	if string(b) != string(want) {
		t.Fatal("store-served sweep differs from single-process table")
	}
	st := c.State()
	if st.Dispatched != dispatchedAfterFirst {
		t.Errorf("store-served pass dispatched %d cells, want 0", st.Dispatched-dispatchedAfterFirst)
	}
	if st.StoreHits == 0 {
		t.Error("expected fleet store hits on the second pass")
	}
	counters := c.CacheCounters()
	if len(counters) == 0 || counters[0].Name != "fleet" || counters[0].Hits == 0 {
		t.Errorf("fleet cache counters not surfaced: %+v", counters)
	}
}

// TestWorkerRejectsFingerprintMismatch pins the terminal-failure contract:
// cells from a differently configured fleet must be refused, not computed.
func TestWorkerRejectsFingerprintMismatch(t *testing.T) {
	wk := NewWorker(sharedSim().Study(), 0)
	req := CellRequest{
		Fingerprint: "uops=1|mixes=1|seed=1|model={}",
		Design:      "4B", SMT: true, MixID: "m", Programs: []string{"mcf"},
	}
	_, err := wk.Evaluate(context.Background(), req)
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("err = %v, want ErrFingerprintMismatch", err)
	}
}

// TestCoordinatorTreatsRejectionAsTerminal: a 409 from a worker must fail
// the sweep immediately — mixing tables across mismatched engines is the
// one thing the fabric must never do, and there is no point retrying.
func TestCoordinatorTreatsRejectionAsTerminal(t *testing.T) {
	var hits atomic.Int64
	rejecting := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, CellPath) {
			hits.Add(1)
			rw.WriteHeader(http.StatusConflict)
			json.NewEncoder(rw).Encode(errorBody{"fingerprint mismatch"}) //nolint:errcheck
			return
		}
		rw.WriteHeader(http.StatusOK)
	}))
	defer rejecting.Close()
	c := newTestCoordinator(t, []string{rejecting.URL}, testOptions())
	_, err := c.SweepDesign(context.Background(), testDesign(), study.Heterogeneous)
	if err == nil {
		t.Fatal("sweep through rejecting worker succeeded, want terminal error")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Errorf("err = %v, want worker-rejection error", err)
	}
}

// TestHedgeFiresOnStraggler: the primary hangs, the hedge delay elapses, and
// the backup worker completes the cell.
func TestHedgeFiresOnStraggler(t *testing.T) {
	want := localSweepJSON(t)
	release := make(chan struct{})
	var stalled sync.Once
	straggler := newWorkerServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, CellPath) {
				var wasFirst bool
				stalled.Do(func() { wasFirst = true })
				if wasFirst {
					select { // hold the first cell until the sweep is over
					case <-release:
					case <-r.Context().Done():
					}
					panic(http.ErrAbortHandler)
				}
			}
			next.ServeHTTP(rw, r)
		})
	})
	defer close(release)
	healthy := newWorkerServer(t, nil)
	opts := testOptions()
	opts.HedgeDelay = 50 * time.Millisecond
	c := newTestCoordinator(t, []string{straggler.URL, healthy.URL}, opts)
	got := fleetSweepJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("sweep with straggling worker differs from single-process table")
	}
	if c.State().Hedges == 0 {
		t.Error("expected at least one hedged dispatch")
	}
}

// TestNewCoordinatorValidation pins constructor errors.
func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(sharedSim().Study(), nil, Options{}); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("empty worker list: err = %v, want ErrNoWorkers", err)
	}
	if _, err := NewCoordinator(nil, []string{"http://x"}, Options{}); err == nil {
		t.Error("nil study accepted")
	}
}

// TestRingDeterministicAndBalanced: two independently built rings agree on
// every owner (the cross-process routing contract), and load spreads.
func TestRingDeterministicAndBalanced(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r1 := newRing(urls, 0)
	r2 := newRing(urls, 0)
	counts := make([]int, len(urls))
	for i := 0; i < 4096; i++ {
		key := KeyHashLike(i)
		o1, o2 := r1.ownerOf(key), r2.ownerOf(key)
		if o1 != o2 {
			t.Fatalf("rings disagree on key %q: %d vs %d", key, o1, o2)
		}
		counts[o1]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("worker %d owns no keys out of 4096", i)
		}
	}
}

// KeyHashLike derives a distinct deterministic key per index.
func KeyHashLike(i int) string {
	return strings.Repeat("k", i%7+1) + "-" + strings.Repeat("x", i%13+1)
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"smtflex/internal/faults"
	"smtflex/internal/journal"
	"smtflex/internal/study"
)

// openTestJournal opens dir as a journal under the shared engine's
// fingerprint, the way the daemon does.
func openTestJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, _, err := journal.Open(dir, sharedSim().Study().Fingerprint())
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	return j
}

// TestChaosWireCorruptionQuarantined is the integrity contract test: cell
// responses corrupted on the wire — one bit flipped, torn in half, or
// duplicated — must be quarantined (counted, never stored, never assembled)
// and the cell re-dispatched, with the final table still byte-identical.
func TestChaosWireCorruptionQuarantined(t *testing.T) {
	want := localSweepJSON(t)
	for _, mode := range []faults.Mode{faults.ModeBitflip, faults.ModeTruncate, faults.ModeDuplicate} {
		t.Run(string(mode), func(t *testing.T) {
			faults.Reset()
			t.Cleanup(faults.Reset)
			w1 := newWorkerServer(t, nil)
			w2 := newWorkerServer(t, nil)
			c := newTestCoordinator(t, []string{w1.URL, w2.URL}, testOptions())
			faults.Enable(faults.SiteWire, faults.Injection{Mode: mode, Count: 2})
			got := fleetSweepJSON(t, c)
			if string(got) != string(want) {
				t.Fatal("sweep through wire corruption differs from single-process table")
			}
			st := c.State()
			if st.IntegrityFailures == 0 {
				t.Error("expected quarantined responses to be counted")
			}
			if st.Retries == 0 {
				t.Error("expected quarantined cells to be re-dispatched")
			}
		})
	}
}

// TestCoordinatorCrashResumeByteIdentical is the durability contract test at
// fleet sizes 1, 2 and 4: a sweep interrupted mid-flight leaves its
// completed cells in the write-ahead journal; a fresh coordinator (the
// restarted process) replays them into its store and dispatches only the
// remainder — and the resumed table is byte-identical to the uninterrupted
// single-process run.
func TestCoordinatorCrashResumeByteIdentical(t *testing.T) {
	want := localSweepJSON(t)
	for _, nWorkers := range []int{1, 2, 4} {
		var urls []string
		for i := 0; i < nWorkers; i++ {
			urls = append(urls, newWorkerServer(t, nil).URL)
		}
		dir := t.TempDir()

		// First incarnation: cancel the sweep once a handful of cells have
		// completed (each journaled before its progress tick fires).
		opts := testOptions()
		opts.Journal = openTestJournal(t, dir)
		c1 := newTestCoordinator(t, urls, opts)
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		ctx = study.WithProgress(ctx, func(done, total int) {
			if done >= 6 {
				once.Do(cancel)
			}
		})
		if _, err := c1.SweepDesign(ctx, testDesign(), study.Heterogeneous); err == nil {
			t.Fatalf("fleet of %d: interrupted sweep succeeded, want cancellation", nWorkers)
		}
		cancel()
		journaled := opts.Journal.Len()
		if journaled < 6 {
			t.Fatalf("fleet of %d: %d cells journaled before cancel, want >= 6", nWorkers, journaled)
		}

		// Second incarnation: a brand-new coordinator over a reopened
		// journal, as after kill -9 + restart.
		opts2 := testOptions()
		opts2.Journal = openTestJournal(t, dir)
		c2 := newTestCoordinator(t, urls, opts2)
		st := c2.State()
		if st.JournalReplayed != journaled || st.JournalDropped != 0 {
			t.Fatalf("fleet of %d: replayed %d dropped %d, want %d and 0",
				nWorkers, st.JournalReplayed, st.JournalDropped, journaled)
		}
		got := fleetSweepJSON(t, c2)
		if string(got) != string(want) {
			t.Fatalf("fleet of %d: resumed sweep differs from single-process table", nWorkers)
		}
		st = c2.State()
		// Every journaled cell must be served from the replayed store,
		// not re-dispatched.
		if st.StoreHits != int64(journaled) {
			t.Errorf("fleet of %d: resumed sweep store hits = %d, want %d",
				nWorkers, st.StoreHits, journaled)
		}
		total := int64(study.MaxThreads * 2) // 2 mixes per thread count
		if st.Dispatched+st.Fallbacks < total-int64(journaled) || st.Dispatched > total {
			t.Errorf("fleet of %d: resumed sweep dispatched %d (+%d fallbacks) of %d with %d journaled",
				nWorkers, st.Dispatched, st.Fallbacks, total, journaled)
		}
	}
}

// TestCoordinatorReplayRejectsTamperedJournal: a journal record whose
// payload passes the journal's at-rest digest but fails the wire layer's
// canonical integrity check (here: no cell digest at all) must be dropped at
// replay, never seeded into the store.
func TestCoordinatorReplayRejectsTamperedJournal(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	key := strings.Repeat("ab", 32)
	payload, err := json.Marshal(CellResponse{Key: key, STP: 3.14})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Journal = openTestJournal(t, dir)
	c := newTestCoordinator(t, []string{newWorkerServer(t, nil).URL}, opts)
	st := c.State()
	if st.JournalReplayed != 0 || st.JournalDropped != 1 {
		t.Fatalf("replayed %d dropped %d, want 0 and 1", st.JournalReplayed, st.JournalDropped)
	}
	if _, ok := c.store.Cached(key); ok {
		t.Fatal("tampered record reached the fleet store")
	}
}

// lyingWorkerServer wraps a worker so every cell response is silently wrong
// — the result perturbed and the digest recomputed to be self-consistent.
// Per-cell integrity checks cannot catch it; only an audit against an
// independent worker can.
func lyingWorkerServer(t *testing.T) *httptest.Server {
	t.Helper()
	return newWorkerServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if !strings.HasPrefix(r.URL.Path, CellPath) {
				next.ServeHTTP(rw, r)
				return
			}
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				for k, v := range rec.Header() {
					rw.Header()[k] = v
				}
				rw.WriteHeader(rec.Code)
				rw.Write(rec.Body.Bytes()) //nolint:errcheck
				return
			}
			var resp CellResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Errorf("lying worker: %v", err)
				return
			}
			resp.STP += 0.5
			resp.Digest = resp.digest()
			json.NewEncoder(rw).Encode(resp) //nolint:errcheck
		})
	})
}

// TestAuditDivergenceHardFailure: with audit mode sampling every cell, a
// worker returning self-consistent but wrong results is caught by the digest
// diff against an independent worker, and the sweep fails hard — silent
// divergence must never assemble into a table.
func TestAuditDivergenceHardFailure(t *testing.T) {
	honest := newWorkerServer(t, nil)
	liar := lyingWorkerServer(t)
	opts := testOptions()
	opts.AuditFraction = 1
	c := newTestCoordinator(t, []string{honest.URL, liar.URL}, opts)
	_, err := c.SweepDesign(context.Background(), testDesign(), study.Heterogeneous)
	if !errors.Is(err, ErrAuditDivergence) {
		t.Fatalf("sweep with a lying worker: err = %v, want ErrAuditDivergence", err)
	}
	if c.State().AuditMismatches == 0 {
		t.Error("expected audit mismatch counter to advance")
	}
}

// TestAuditCleanFleetPasses: audit mode over an honest fleet audits cells
// and changes nothing — the table stays byte-identical.
func TestAuditCleanFleetPasses(t *testing.T) {
	want := localSweepJSON(t)
	w1 := newWorkerServer(t, nil)
	w2 := newWorkerServer(t, nil)
	opts := testOptions()
	opts.AuditFraction = 1
	c := newTestCoordinator(t, []string{w1.URL, w2.URL}, opts)
	got := fleetSweepJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("audited sweep differs from single-process table")
	}
	st := c.State()
	if st.Audits == 0 {
		t.Error("expected audits with AuditFraction=1")
	}
	if st.AuditMismatches != 0 {
		t.Errorf("honest fleet produced %d audit mismatches", st.AuditMismatches)
	}
}

// TestCoordinatorRejectsBadAuditFraction pins constructor validation.
func TestCoordinatorRejectsBadAuditFraction(t *testing.T) {
	for _, frac := range []float64{-0.1, 1.1} {
		opts := testOptions()
		opts.AuditFraction = frac
		if _, err := NewCoordinator(sharedSim().Study(), []string{"http://x"}, opts); err == nil {
			t.Errorf("audit fraction %g accepted", frac)
		}
	}
}

// TestCoordinatorReroutesAroundDrainingWorker: a worker answering 503 with
// the draining header must be skipped immediately — cells reroute to the
// rest of the fleet, the drain counter advances, and the worker takes no
// breaker penalty (it is healthy, just leaving).
func TestCoordinatorReroutesAroundDrainingWorker(t *testing.T) {
	want := localSweepJSON(t)
	draining := newWorkerServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, CellPath) {
				rw.Header().Set(DrainingHeader, "1")
				rw.Header().Set("Retry-After", "1")
				rw.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(rw, r)
		})
	})
	healthy := newWorkerServer(t, nil)
	c := newTestCoordinator(t, []string{draining.URL, healthy.URL}, testOptions())
	got := fleetSweepJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("sweep around draining worker differs from single-process table")
	}
	st := c.State()
	if st.Drains == 0 {
		t.Error("expected drain counter to advance")
	}
	for _, w := range st.Workers {
		if w.URL == draining.URL && w.Breaker != "closed" {
			t.Errorf("draining worker breaker %q, want closed (drains carry no penalty)", w.Breaker)
		}
	}
}

package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(3, 10*time.Second)
	for i := 0; i < 2; i++ {
		if !b.tryAcquire(t0) {
			t.Fatalf("closed breaker rejected dispatch %d", i)
		}
		b.failure(t0)
	}
	if st, _, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("breaker %v after 2 failures, want closed", st)
	}
	b.failure(t0)
	if st, trips, _ := b.snapshot(); st != breakerOpen || trips != 1 {
		t.Fatalf("breaker %v trips=%d after threshold, want open/1", st, trips)
	}
	if b.tryAcquire(t0.Add(time.Second)) {
		t.Fatal("open breaker admitted a dispatch inside the cooldown")
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(3, 10*time.Second)
	b.failure(t0)
	b.failure(t0)
	b.success()
	b.failure(t0)
	b.failure(t0)
	if st, _, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("breaker %v, want closed: success must reset the run", st)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(1, 10*time.Second)
	b.failure(t0)
	after := t0.Add(11 * time.Second)
	if !b.tryAcquire(after) {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if st, _, _ := b.snapshot(); st != breakerHalfOpen {
		t.Fatalf("breaker %v, want half-open", st)
	}
	// The probe slot is single-occupancy.
	if b.tryAcquire(after) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// A neutral release frees the slot for the next prober.
	b.release()
	if !b.tryAcquire(after) {
		t.Fatal("released probe slot not re-acquirable")
	}
	// Probe success closes.
	b.success()
	if st, _, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("breaker %v after probe success, want closed", st)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(1, 10*time.Second)
	b.failure(t0)
	after := t0.Add(11 * time.Second)
	if !b.tryAcquire(after) {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	b.failure(after)
	if st, trips, _ := b.snapshot(); st != breakerOpen || trips != 2 {
		t.Fatalf("breaker %v trips=%d after probe failure, want open/2", st, trips)
	}
	// The fresh open period starts from the probe failure.
	if b.tryAcquire(after.Add(5 * time.Second)) {
		t.Fatal("re-opened breaker admitted traffic inside the new cooldown")
	}
	if !b.tryAcquire(after.Add(11 * time.Second)) {
		t.Fatal("re-opened breaker never cooled down again")
	}
}

func TestBreakerForceOpen(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(5, 10*time.Second)
	b.forceOpen(t0)
	if st, _, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("breaker %v after forceOpen, want open", st)
	}
	if b.tryAcquire(t0.Add(time.Second)) {
		t.Fatal("forced-open breaker admitted traffic")
	}
	// forceOpen on an already-open breaker must not extend the cooldown window
	// count as a new trip.
	b.forceOpen(t0.Add(time.Second))
	if _, trips, _ := b.snapshot(); trips != 1 {
		t.Fatalf("trips = %d after redundant forceOpen, want 1", trips)
	}
}

func TestBreakerAllowsTraffic(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(1, 10*time.Second)
	if !b.allowsTraffic(t0) {
		t.Fatal("closed breaker reports no traffic")
	}
	b.failure(t0)
	if b.allowsTraffic(t0.Add(time.Second)) {
		t.Fatal("open breaker reports traffic inside the cooldown")
	}
	if !b.allowsTraffic(t0.Add(11 * time.Second)) {
		t.Fatal("cooled-down breaker reports no traffic")
	}
	// allowsTraffic must not consume the half-open probe slot.
	if !b.tryAcquire(t0.Add(11 * time.Second)) {
		t.Fatal("probe slot was consumed by allowsTraffic")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for st, want := range map[breakerState]string{
		breakerClosed: "closed", breakerOpen: "open", breakerHalfOpen: "half-open",
	} {
		if got := st.String(); got != want {
			t.Errorf("state %d = %q, want %q", st, got, want)
		}
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"smtflex/internal/obs"
	"smtflex/internal/study"
)

// TestFleetSweepBitIdenticalWithTracing extends the engine's bit-identity
// contract across the fabric: arming tracing must not change one bit of a
// distributed sweep at any fleet size, and the armed run must produce exactly
// one stitched trace per sweep — worker evaluation spans grafted under the
// cluster.dispatch spans that carried them, each stamped with its worker's
// lane — whose fleet time stack decomposes ≥95% of the attributed time into
// named fabric components.
func TestFleetSweepBitIdenticalWithTracing(t *testing.T) {
	obs.Disable()
	want := localSweepJSON(t) // the dark golden, computed before arming

	obs.Enable()
	t.Cleanup(obs.Disable)
	for _, nWorkers := range []int{1, 2, 4} {
		var urls []string
		for i := 0; i < nWorkers; i++ {
			urls = append(urls, newWorkerServer(t, nil).URL)
		}
		c := newTestCoordinator(t, urls, testOptions())
		col := obs.NewCollector(4)
		ctx, root := obs.StartTrace(context.Background(), col, "/v1/sweep")
		sw, err := c.SweepDesign(ctx, testDesign(), study.Heterogeneous)
		root.End()
		if err != nil {
			t.Fatalf("fleet of %d: armed sweep: %v", nWorkers, err)
		}
		got, err := json.Marshal(sw)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("fleet of %d: armed sweep differs from dark golden", nWorkers)
		}

		if col.Len() != 1 {
			t.Fatalf("fleet of %d: %d traces buffered, want one stitched trace", nWorkers, col.Len())
		}
		snap := col.Traces()[0].Snapshot()

		names := make(map[string]string, len(snap.Spans)) // span ID -> name
		parents := make(map[string]string, len(snap.Spans))
		for _, sp := range snap.Spans {
			names[sp.ID] = sp.Name
			parents[sp.ID] = sp.Parent
		}
		underDispatch := func(id string) bool {
			for id != "" {
				id = parents[id]
				if names[id] == "cluster.dispatch" {
					return true
				}
			}
			return false
		}
		lanes := make(map[string]bool)
		solves := 0
		for _, sp := range snap.Spans {
			lane, _ := sp.Attrs[obs.LaneAttr].(string)
			if lane == "" {
				continue
			}
			lanes[lane] = true
			if sp.Name != "contention.solve" {
				continue
			}
			solves++
			if !underDispatch(sp.ID) {
				t.Fatalf("fleet of %d: grafted contention.solve span %s not a descendant of any cluster.dispatch span", nWorkers, sp.ID)
			}
		}
		if solves == 0 {
			t.Errorf("fleet of %d: no grafted contention.solve spans in the stitched trace", nWorkers)
		}
		if wantLanes := min(nWorkers, 2); len(lanes) < wantLanes {
			t.Errorf("fleet of %d: %d distinct worker lanes in the stitched trace, want >= %d", nWorkers, len(lanes), wantLanes)
		}

		// The fleet decomposition: at least 95% of the attributed time lands
		// in a named fabric component, not "other".
		stacks := obs.FleetTimeStacks([]obs.TraceJSON{snap})
		if len(stacks) != 1 {
			t.Fatalf("fleet of %d: %d time-stack groups, want 1", nWorkers, len(stacks))
		}
		var total int64
		for _, ns := range stacks[0].ByNs {
			total += ns
		}
		if total <= 0 {
			t.Fatalf("fleet of %d: empty fleet time stack", nWorkers)
		}
		if other := stacks[0].ByNs[obs.FleetCatOther]; float64(other)/float64(total) > 0.05 {
			t.Errorf("fleet of %d: %0.1f%% of fleet time unattributed (stack %v), want <= 5%%",
				nWorkers, 100*float64(other)/float64(total), stacks[0].ByNs)
		}
	}
}

// TestDispatchCarriesRequestID pins the identity-propagation satellite: the
// coordinator stamps its request ID on every outbound cell dispatch, so
// worker request logs correlate with the coordinator's.
func TestDispatchCarriesRequestID(t *testing.T) {
	var mu sync.Mutex
	rids := make(map[string]bool)
	ws := newWorkerServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, CellPath) {
				mu.Lock()
				rids[r.Header.Get("X-Request-ID")] = true
				mu.Unlock()
			}
			next.ServeHTTP(rw, r)
		})
	})
	c := newTestCoordinator(t, []string{ws.URL}, testOptions())
	ctx := obs.WithRequestID(context.Background(), "rid-fabric-1")
	if _, err := c.SweepDesign(ctx, testDesign(), study.Heterogeneous); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rids) != 1 || !rids["rid-fabric-1"] {
		t.Errorf("dispatch request IDs seen by worker: %v, want exactly rid-fabric-1", rids)
	}
}

// TestWireEnvelopeExcludedFromDigest pins the integrity contract the
// observability envelope rides on: two responses differing only in trace and
// compute time carry the same digest, and mutating payload fields breaks it.
func TestWireEnvelopeExcludedFromDigest(t *testing.T) {
	base := CellResponse{Key: "k", STP: 1.5, ANTT: 2.0, Converged: true}
	base.Digest = base.digest()

	withEnvelope := base
	withEnvelope.ComputeNs = 12345
	withEnvelope.Trace = &CellTrace{TraceID: "t-1", StartUnixNs: 99, Spans: []obs.SpanJSON{{ID: "s1", Name: "contention.solve"}}}
	if err := withEnvelope.verifyIntegrity("k"); err != nil {
		t.Fatalf("envelope fields broke the digest: %v", err)
	}

	tampered := withEnvelope
	tampered.STP = 1.6
	if err := tampered.verifyIntegrity("k"); err == nil {
		t.Fatal("tampered payload passed integrity verification")
	}
}

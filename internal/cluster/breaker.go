package cluster

import (
	"sync"
	"time"
)

// breakerState is a circuit breaker's position.
type breakerState int

const (
	// breakerClosed passes traffic; consecutive failures accumulate.
	breakerClosed breakerState = iota
	// breakerOpen rejects traffic until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen admits exactly one probe request; its outcome decides
	// whether the breaker closes again or re-opens.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-worker circuit breaker: the fabric's replacement for
// binary worker-loss marking. Closed, it passes dispatches and counts
// consecutive failures; at threshold it opens and the worker gets no traffic
// for a cooldown; after the cooldown it half-opens and admits a single probe
// dispatch whose outcome decides between closing (worker recovered) and
// re-opening (still sick). Sheds, drains and terminal engine errors are
// neutral — they release a held probe slot without a verdict, because they
// say nothing about the worker's transport health.
type breaker struct {
	threshold int           // consecutive failures to trip open
	cooldown  time.Duration // open → half-open delay

	mu         sync.Mutex
	state      breakerState
	fails      int       // consecutive failures while closed
	openedAt   time.Time // when the breaker last tripped
	probing    bool      // half-open probe slot held
	trips      int64     // lifetime open transitions (observability)
	stateSince time.Time // when the breaker last changed state (observability)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, stateSince: time.Now()}
}

// setState transitions the breaker, stamping the transition time so the
// debug surface can show since-when, not just what. Caller holds b.mu; a
// same-state call (e.g. success on an already-closed breaker) is not a
// transition and keeps the original timestamp.
func (b *breaker) setState(s breakerState, now time.Time) {
	if b.state != s {
		b.state = s
		b.stateSince = now
	}
}

// tryAcquire reports whether a dispatch may proceed now. In the half-open
// state it grants the single probe slot to the first caller; the caller must
// then resolve the probe via success, failure or release.
func (b *breaker) tryAcquire(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(breakerHalfOpen, now)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a successful dispatch: the breaker closes and the failure
// run resets. Called for ordinary successes and for a healthy probe.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setState(breakerClosed, time.Now())
	b.fails = 0
	b.probing = false
}

// failure records a transport-level dispatch failure. A half-open probe
// failure re-opens immediately; closed failures accumulate until threshold.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.trip(now)
		return
	}
	b.fails++
	if b.state == breakerClosed && b.fails >= b.threshold {
		b.trip(now)
	}
}

// forceOpen trips the breaker immediately regardless of the failure run —
// used when an out-of-band signal (failed health probe) says the worker is
// gone.
func (b *breaker) forceOpen(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		b.trip(now)
	}
}

// trip moves to open. Caller holds b.mu.
func (b *breaker) trip(now time.Time) {
	b.setState(breakerOpen, now)
	b.openedAt = now
	b.fails = 0
	b.probing = false
	b.trips++
}

// release resolves a dispatch without a verdict on the worker's health
// (shed, drain, terminal engine error, lost hedge race). It frees a held
// half-open probe slot so the next dispatcher can re-probe.
func (b *breaker) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// snapshot returns the current state, lifetime trip count, and when the
// breaker entered its current state.
func (b *breaker) snapshot() (breakerState, int64, time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.stateSince
}

// allowsTraffic reports whether the breaker would admit a dispatch without
// consuming the probe slot — the fabric's "alive" notion.
func (b *breaker) allowsTraffic(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return now.Sub(b.openedAt) >= b.cooldown
	default:
		return !b.probing
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smtflex/internal/machstats"
	"smtflex/internal/obs"
)

// Fleet aggregation: the coordinator scrapes each live worker's /metrics,
// /debug/timestack and /debug/machstats over the same HTTP client it
// dispatches with, and merges them into one snapshot — per-worker columns
// plus fleet totals — behind the coordinator's GET /debug/fleet. A worker
// that cannot be scraped degrades to an error row; partial fleets still
// produce a snapshot, never an error.

// fleetScrapeTimeout caps one worker's whole scrape (all three endpoints).
const fleetScrapeTimeout = 5 * time.Second

// FleetWorker is one worker's column in the fleet snapshot.
type FleetWorker struct {
	URL string `json:"url"`
	// Alive mirrors the dispatch-side breaker verdict at scrape time; Err is
	// set when the scrape itself failed (the worker keeps its row either way).
	Alive bool   `json:"alive"`
	Err   string `json:"err,omitempty"`
	// Metrics maps Prometheus series ("name" or `name{labels}`) to their
	// scraped values.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// TimeStacks is the worker's own per-route time-stack report.
	TimeStacks []obs.TimeStack `json:"timestacks,omitempty"`
	// MachCounters flattens the worker's machine-level counters and cycle
	// accumulators ("counter/<name>", "cycles/<name>"). Empty when machstats
	// is disabled on the worker — that is a configuration, not a scrape
	// failure.
	MachCounters map[string]float64 `json:"mach_counters,omitempty"`
}

// FleetSnapshot is the merged view of the whole fleet at one scrape.
type FleetSnapshot struct {
	Workers []FleetWorker `json:"workers"`
	// Scraped counts workers whose scrape fully succeeded; Errors the rest.
	Scraped int `json:"scraped"`
	Errors  int `json:"errors"`
	// Totals sums every numeric Prometheus series across scraped workers.
	// Counters and gauges sum meaningfully; histogram buckets are cumulative
	// counters, so their sums are fleet-wide bucket counts.
	Totals map[string]float64 `json:"totals,omitempty"`
	// TimeStacks merges the workers' per-route stacks: per group name, the
	// component nanoseconds, trace counts and wall time are summed and the
	// percentages recomputed over the fleet-wide totals.
	TimeStacks []obs.TimeStack `json:"timestacks,omitempty"`
	// MachCounters sums the workers' machine-level counters.
	MachCounters map[string]float64 `json:"mach_counters,omitempty"`
}

// FleetSnapshot scrapes every worker concurrently and merges the results.
// It never fails: unreachable workers appear as error rows and the merge
// covers whoever answered.
func (c *Coordinator) FleetSnapshot(ctx context.Context) FleetSnapshot {
	rows := make([]FleetWorker, len(c.workers))
	var wg sync.WaitGroup
	for i, ws := range c.workers {
		wg.Add(1)
		go func(i int, ws *workerState) {
			defer wg.Done()
			rows[i] = c.scrapeWorker(ctx, ws)
		}(i, ws)
	}
	wg.Wait()

	snap := FleetSnapshot{Workers: rows}
	totals := make(map[string]float64)
	mach := make(map[string]float64)
	merged := make(map[string]*obs.TimeStack)
	var groupOrder []string
	for _, row := range rows {
		if row.Err != "" {
			snap.Errors++
			continue
		}
		snap.Scraped++
		for k, v := range row.Metrics {
			totals[k] += v
		}
		for k, v := range row.MachCounters {
			mach[k] += v
		}
		for _, ts := range row.TimeStacks {
			m, ok := merged[ts.Name]
			if !ok {
				m = &obs.TimeStack{Name: ts.Name, ByNs: map[string]int64{}, Percent: map[string]float64{}}
				merged[ts.Name] = m
				groupOrder = append(groupOrder, ts.Name)
			}
			m.Traces += ts.Traces
			m.WallNs += ts.WallNs
			for cat, ns := range ts.ByNs {
				m.ByNs[cat] += ns
			}
		}
	}
	sort.Strings(groupOrder)
	for _, name := range groupOrder {
		m := merged[name]
		var total int64
		for _, ns := range m.ByNs {
			total += ns
		}
		if total > 0 {
			for cat, ns := range m.ByNs {
				m.Percent[cat] = 100 * float64(ns) / float64(total)
			}
		}
		snap.TimeStacks = append(snap.TimeStacks, *m)
	}
	if len(totals) > 0 {
		snap.Totals = totals
	}
	if len(mach) > 0 {
		snap.MachCounters = mach
	}
	return snap
}

// scrapeWorker pulls one worker's three observability surfaces. /metrics
// failing fails the scrape; /debug/timestack and /debug/machstats are
// feature-gated on the worker (tracing/-machstats), so a 404 there is simply
// an absent section.
func (c *Coordinator) scrapeWorker(ctx context.Context, ws *workerState) FleetWorker {
	row := FleetWorker{URL: ws.url, Alive: ws.alive()}
	sctx, cancel := context.WithTimeout(ctx, fleetScrapeTimeout)
	defer cancel()

	body, status, err := c.get(sctx, ws.url+"/metrics")
	if err != nil {
		row.Err = fmt.Sprintf("scrape /metrics: %v", err)
		return row
	}
	if status != http.StatusOK {
		row.Err = fmt.Sprintf("scrape /metrics: status %d", status)
		return row
	}
	row.Metrics = parsePromText(body)

	if body, status, err = c.get(sctx, ws.url+"/debug/timestack"); err == nil && status == http.StatusOK {
		var tr struct {
			Stacks []obs.TimeStack `json:"stacks"`
		}
		if json.Unmarshal(body, &tr) == nil {
			row.TimeStacks = tr.Stacks
		}
	}

	if body, status, err = c.get(sctx, ws.url+"/debug/machstats"); err == nil && status == http.StatusOK {
		var ms machstats.Snapshot
		if json.Unmarshal(body, &ms) == nil {
			mach := make(map[string]float64, len(ms.Counters)+len(ms.Cycles))
			for _, cs := range ms.Counters {
				mach["counter/"+cs.Name] += float64(cs.Value)
			}
			for _, cy := range ms.Cycles {
				mach["cycles/"+cy.Name] += cy.Cycles
			}
			if len(mach) > 0 {
				row.MachCounters = mach
			}
		}
	}
	return row
}

// get issues one bounded GET and returns the body and status.
func (c *Coordinator) get(ctx context.Context, url string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, 0, err
	}
	return b, resp.StatusCode, nil
}

// parsePromText extracts series → value from a Prometheus text exposition:
// comment lines are skipped, and each sample line splits at the last space.
// Unparsable lines are ignored — this is a best-effort debug merge, not a
// conformant client.
func parsePromText(b []byte) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out
}

// RenderText formats the snapshot as the text form of /debug/fleet: one row
// per worker, the headline fleet totals, and the merged time stacks.
func (s FleetSnapshot) RenderText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d workers, %d scraped, %d errors\n\n", len(s.Workers), s.Scraped, s.Errors)
	fmt.Fprintf(&b, "%-32s %-6s %s\n", "worker", "alive", "status")
	for _, w := range s.Workers {
		status := "ok"
		if w.Err != "" {
			status = w.Err
		}
		fmt.Fprintf(&b, "%-32s %-6t %s\n", w.URL, w.Alive, status)
	}
	if len(s.Totals) > 0 {
		b.WriteString("\nfleet totals (summed across scraped workers):\n")
		keys := make([]string, 0, len(s.Totals))
		for k := range s.Totals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-64s %g\n", k, s.Totals[k])
		}
	}
	if len(s.MachCounters) > 0 {
		b.WriteString("\nfleet machine counters:\n")
		keys := make([]string, 0, len(s.MachCounters))
		for k := range s.MachCounters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-64s %g\n", k, s.MachCounters[k])
		}
	}
	if len(s.TimeStacks) > 0 {
		b.WriteString("\nmerged worker time stacks:\n")
		b.WriteString(obs.RenderTimeStacks(s.TimeStacks))
	}
	return b.String()
}

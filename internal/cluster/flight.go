package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The sweep flight recorder: a bounded, per-sweep log of every cell's
// lifecycle (queued → dispatched → stolen/hedged/retried/quarantined →
// completed) with the worker that answered, attempt counts, and the
// wall/queue/wire/compute nanosecond split. It exists so a post-mortem of a
// crashed or slow sweep is a file read — /debug/flight while the process
// lives, a flight-*.json next to the journal after it dies — not a log grep.
//
// The recorder is deliberately cheap and lossy at the edges: events per cell
// are capped, completed sweeps are kept in a small ring, and a dump failure
// is logged, never fatal. Like the rest of the observability layer it only
// reads clocks, so armed and dark sweeps stay byte-identical.

const (
	// maxFlightSweeps bounds the completed-sweep ring behind /debug/flight.
	maxFlightSweeps = 16
	// maxFlightEvents bounds one cell's event log; a healthy cell logs two
	// (queued, dispatched) plus a completion stamp, so hitting the cap itself
	// signals a pathological cell.
	maxFlightEvents = 24
)

// Flight event kinds, in rough lifecycle order.
const (
	FlightQueued      = "queued"
	FlightDispatched  = "dispatched"
	FlightStolen      = "stolen"
	FlightHedged      = "hedged"
	FlightRetried     = "retried"
	FlightQuarantined = "quarantined"
	FlightFallback    = "fallback"
	FlightCompleted   = "completed"
)

// FlightEvent is one timestamped lifecycle transition of one cell.
type FlightEvent struct {
	AtUnixNs int64  `json:"at_unix_ns"`
	Kind     string `json:"kind"`
	Worker   string `json:"worker,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// FlightCell is one cell's record: identity, outcome, the ns split, and the
// capped event log.
type FlightCell struct {
	Key      string `json:"key"`
	N        int    `json:"n"`
	Mix      string `json:"mix"`
	Worker   string `json:"worker,omitempty"` // worker whose response completed the cell
	Attempts int    `json:"attempts"`
	Stolen   bool   `json:"stolen,omitempty"`
	Hedges   int    `json:"hedges,omitempty"`
	Retries  int    `json:"retries,omitempty"`
	// Quarantines counts integrity-failed responses this cell absorbed.
	Quarantines int  `json:"quarantines,omitempty"`
	Done        bool `json:"done"`
	// QueueNs is enqueue → first dispatch; WireNs is the winning attempt's
	// RTT minus the worker-reported compute time (clamped at zero); ComputeNs
	// is that worker-reported compute time; WallNs is enqueue → completion.
	QueueNs       int64         `json:"queue_ns"`
	WireNs        int64         `json:"wire_ns"`
	ComputeNs     int64         `json:"compute_ns"`
	WallNs        int64         `json:"wall_ns"`
	Events        []FlightEvent `json:"events"`
	DroppedEvents int           `json:"dropped_events,omitempty"`
}

// FlightRecord is one sweep's flight record.
type FlightRecord struct {
	Sweep       string        `json:"sweep"` // content address of the sweep (memo.KeyHash of study.SweepKey)
	Design      string        `json:"design"`
	Kind        string        `json:"kind"`
	StartUnixNs int64         `json:"start_unix_ns"`
	EndUnixNs   int64         `json:"end_unix_ns,omitempty"`
	Total       int           `json:"total"`     // cells in the sweep
	Prefilled   int           `json:"prefilled"` // served from the fleet store without dispatch
	Completed   int           `json:"completed"` // dispatched cells that finished
	Active      bool          `json:"active"`
	Err         string        `json:"err,omitempty"`
	Cells       []*FlightCell `json:"cells"`
}

// FlightMeta is the cheap per-sweep summary behind the /debug/flight listing.
type FlightMeta struct {
	Sweep       string `json:"sweep"`
	Design      string `json:"design"`
	Kind        string `json:"kind"`
	StartUnixNs int64  `json:"start_unix_ns"`
	EndUnixNs   int64  `json:"end_unix_ns,omitempty"`
	Total       int    `json:"total"`
	Prefilled   int    `json:"prefilled"`
	Completed   int    `json:"completed"`
	Active      bool   `json:"active"`
	Err         string `json:"err,omitempty"`
}

// flightCell is the recorder's mutable per-cell state; FlightCell is its
// rendered form.
type flightCell struct {
	FlightCell
	enqueued   time.Time
	dispatched bool // first dispatch seen (QueueNs stamped)
}

// flightSweep is one active sweep being recorded.
type flightSweep struct {
	rec   FlightRecord
	cells map[string]*flightCell
}

// flightRecorder tracks active sweeps and keeps a ring of completed records.
// A nil *flightRecorder is valid and inert, so call sites never branch.
type flightRecorder struct {
	dir string // dump directory ("" = no dumps)
	log func(msg string, err error)

	mu     sync.Mutex
	active map[string]*flightSweep
	byKey  map[string]*flightCell // cells of active sweeps, by content address
	done   []*FlightRecord        // completed records, newest first
}

func newFlightRecorder(dir string, logf func(msg string, err error)) *flightRecorder {
	if logf == nil {
		logf = func(string, error) {}
	}
	return &flightRecorder{
		dir:    dir,
		log:    logf,
		active: make(map[string]*flightSweep),
		byKey:  make(map[string]*flightCell),
	}
}

// begin opens a sweep record. Concurrent identical sweeps coalesce upstream
// (the sweeps memo cache), so one sweep ID is active at most once.
func (f *flightRecorder) begin(sweep, design, kind string, total, prefilled int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.active[sweep] = &flightSweep{
		rec: FlightRecord{
			Sweep: sweep, Design: design, Kind: kind,
			StartUnixNs: time.Now().UnixNano(),
			Total:       total, Prefilled: prefilled, Active: true,
		},
		cells: make(map[string]*flightCell),
	}
	f.mu.Unlock()
}

// register adds one dispatchable cell to its sweep's record.
func (f *flightRecorder) register(sweep, key string, n int, mix string) {
	if f == nil {
		return
	}
	now := time.Now()
	f.mu.Lock()
	if fs, ok := f.active[sweep]; ok {
		fc := &flightCell{
			FlightCell: FlightCell{Key: key, N: n, Mix: mix},
			enqueued:   now,
		}
		fc.Events = append(fc.Events, FlightEvent{AtUnixNs: now.UnixNano(), Kind: FlightQueued})
		fs.cells[key] = fc
		f.byKey[key] = fc
	}
	f.mu.Unlock()
}

// event appends one lifecycle event to a cell, updating the derived counters.
func (f *flightRecorder) event(key, kind, worker, detail string) {
	if f == nil {
		return
	}
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	fc, ok := f.byKey[key]
	if !ok {
		return
	}
	switch kind {
	case FlightDispatched:
		fc.Attempts++
		if !fc.dispatched {
			fc.dispatched = true
			fc.QueueNs = now.Sub(fc.enqueued).Nanoseconds()
		}
	case FlightStolen:
		fc.Stolen = true
	case FlightHedged:
		fc.Hedges++
	case FlightRetried:
		fc.Retries++
	case FlightQuarantined:
		fc.Quarantines++
	}
	if len(fc.Events) >= maxFlightEvents {
		fc.DroppedEvents++
		return
	}
	fc.Events = append(fc.Events, FlightEvent{
		AtUnixNs: now.UnixNano(), Kind: kind, Worker: worker, Detail: detail,
	})
}

// attemptDone records the winning attempt's timing split for a cell: RTT
// minus the worker-reported compute time is the wire component.
func (f *flightRecorder) attemptDone(key, worker string, rtt time.Duration, computeNs int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fc, ok := f.byKey[key]
	if !ok {
		return
	}
	fc.ComputeNs = computeNs
	if wire := rtt.Nanoseconds() - computeNs; wire > 0 {
		fc.WireNs = wire
	} else {
		fc.WireNs = 0
	}
}

// complete marks a cell finished by worker (or locally, worker "").
func (f *flightRecorder) complete(sweep, key, worker string) {
	if f == nil {
		return
	}
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	fc, ok := f.byKey[key]
	if !ok {
		return
	}
	fc.Done = true
	fc.Worker = worker
	fc.WallNs = now.Sub(fc.enqueued).Nanoseconds()
	if len(fc.Events) < maxFlightEvents {
		fc.Events = append(fc.Events, FlightEvent{
			AtUnixNs: now.UnixNano(), Kind: FlightCompleted, Worker: worker,
		})
	} else {
		fc.DroppedEvents++
	}
	if fs, ok := f.active[sweep]; ok {
		fs.rec.Completed++
	}
}

// end closes a sweep record, moves it to the completed ring, and dumps it to
// the flight directory when one is configured.
func (f *flightRecorder) end(sweep string, err error) {
	if f == nil {
		return
	}
	f.mu.Lock()
	fs, ok := f.active[sweep]
	if !ok {
		f.mu.Unlock()
		return
	}
	delete(f.active, sweep)
	for key := range fs.cells {
		delete(f.byKey, key)
	}
	rec := fs.render()
	rec.Active = false
	rec.EndUnixNs = time.Now().UnixNano()
	if err != nil {
		rec.Err = err.Error()
	}
	f.done = append([]*FlightRecord{rec}, f.done...)
	if len(f.done) > maxFlightSweeps {
		f.done = f.done[:maxFlightSweeps]
	}
	dir := f.dir
	f.mu.Unlock()

	if dir != "" {
		if derr := dumpFlight(dir, rec); derr != nil {
			f.log("flight record dump failed", derr)
		}
	}
}

// render snapshots one sweep's record with cells sorted by (n, mix, key) for
// stable output. Caller holds f.mu.
func (fs *flightSweep) render() *FlightRecord {
	rec := fs.rec
	rec.Cells = make([]*FlightCell, 0, len(fs.cells))
	for _, fc := range fs.cells {
		cp := fc.FlightCell
		cp.Events = append([]FlightEvent(nil), fc.Events...)
		rec.Cells = append(rec.Cells, &cp)
	}
	sort.Slice(rec.Cells, func(i, j int) bool {
		a, b := rec.Cells[i], rec.Cells[j]
		if a.N != b.N {
			return a.N < b.N
		}
		if a.Mix != b.Mix {
			return a.Mix < b.Mix
		}
		return a.Key < b.Key
	})
	return &rec
}

// list returns the flight metas: active sweeps first, then the completed
// ring, newest first.
func (f *flightRecorder) list() []FlightMeta {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightMeta, 0, len(f.active)+len(f.done))
	for _, fs := range f.active {
		out = append(out, metaOf(&fs.rec))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNs > out[j].StartUnixNs })
	for _, rec := range f.done {
		out = append(out, metaOf(rec))
	}
	return out
}

func metaOf(rec *FlightRecord) FlightMeta {
	return FlightMeta{
		Sweep: rec.Sweep, Design: rec.Design, Kind: rec.Kind,
		StartUnixNs: rec.StartUnixNs, EndUnixNs: rec.EndUnixNs,
		Total: rec.Total, Prefilled: rec.Prefilled, Completed: rec.Completed,
		Active: rec.Active, Err: rec.Err,
	}
}

// get returns one sweep's flight record by ID (or unique ID prefix), active
// or completed.
func (f *flightRecorder) get(sweep string) (*FlightRecord, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if fs, ok := f.active[sweep]; ok {
		return fs.render(), true
	}
	for _, rec := range f.done {
		if rec.Sweep == sweep {
			return rec, true
		}
	}
	// Prefix match as a convenience: dump filenames truncate the address.
	var match *FlightRecord
	for id, fs := range f.active {
		if len(sweep) >= 8 && len(id) > len(sweep) && id[:len(sweep)] == sweep {
			if match != nil {
				return nil, false
			}
			match = fs.render()
		}
	}
	for _, rec := range f.done {
		if len(sweep) >= 8 && len(rec.Sweep) > len(sweep) && rec.Sweep[:len(sweep)] == sweep {
			if match != nil {
				return nil, false
			}
			match = rec
		}
	}
	return match, match != nil
}

// dumpFlight writes one flight record as flight-<sweep-prefix>.json in dir,
// atomically (temp file + rename) so a crash mid-dump never leaves a torn
// record next to the journal.
func dumpFlight(dir string, rec *FlightRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	name := rec.Sweep
	if len(name) > 16 {
		name = name[:16]
	}
	path := filepath.Join(dir, "flight-"+name+".json")
	tmp, err := os.CreateTemp(dir, ".flight-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rename flight record: %w", err)
	}
	return nil
}

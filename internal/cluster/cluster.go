// Package cluster is the distributed sweep fabric: a coordinator/worker
// subsystem that shards sweep work units — (design × mix × thread count)
// cells — across a fleet of smtflexd processes and reassembles tables
// bit-identical to the single-process engine.
//
// The design in one paragraph: a sweep decomposes into independently
// evaluable cells (study.SweepMixes), each with a canonical content address
// (memo.KeyHash of study.CellKey). A consistent-hash ring maps every cell to
// a preferred worker, so repeated sweeps route the same cell to the same
// worker and hit its local result store. The coordinator dispatches cells
// over HTTP/JSON, checks a fleet-level content-addressed store first
// (identical sub-sweeps are computed once fleet-wide), steals work from slow
// workers' queues when a dispatcher runs dry, hedges attempts that exceed a
// latency threshold with a second dispatch to a different worker, retries on
// worker loss, and — when every worker is gone — falls back to computing the
// remaining cells locally, so a sweep always converges. The per-cell results
// feed study.AssembleSweep, the same reassembly the local pool uses, which
// is why distributed tables are bit-for-bit identical by construction.
//
// Failure semantics: a transport error or timeout marks the worker down for
// the remainder of the sweep (the next sweep re-probes it); its queued cells
// are drained by the other dispatchers as steals. HTTP 503 from a worker's
// admission valve is a shed, not a death — the coordinator honors the
// jittered Retry-After and retries the same worker a bounded number of
// times. 4xx/409 responses are terminal: the request itself is wrong (bad
// design, fleet fingerprint mismatch) and no amount of retrying fixes it.
//
// Observability: dispatch, steal, hedge and retry are obs spans under the
// coordinator's "cluster.sweep" span, so time stacks attribute fleet
// overhead; counters back the daemon's /metrics and /debug/cluster surfaces.
package cluster

import "errors"

// CellPath is the worker-side HTTP route that evaluates one sweep cell. The
// server mounts it only in worker role; the coordinator's client dispatches
// to workerURL+CellPath.
const CellPath = "/cluster/v1/cell"

// ErrFingerprintMismatch is returned by a worker handed a cell from a fleet
// whose engine configuration (profiling length, mix parameters, model
// options) differs from its own. It is terminal: results from mismatched
// engines must never be mixed into one table.
var ErrFingerprintMismatch = errors.New("cluster: fleet fingerprint mismatch")

// ErrNoWorkers is returned when a coordinator is constructed without any
// worker URLs.
var ErrNoWorkers = errors.New("cluster: coordinator needs at least one worker URL")

// ErrAuditDivergence is returned when audit mode (Options.AuditFraction)
// double-dispatches a cell to two independent workers and their result
// digests disagree. It is terminal: divergence means at least one worker is
// producing wrong results, and a table assembled from either cannot be
// trusted.
var ErrAuditDivergence = errors.New("cluster: audit divergence — independent workers disagree on a cell")

// DrainingHeader is set (value "1") on a worker's 503 responses while it is
// draining for shutdown. The coordinator reroutes such cells to another
// worker immediately — no shed budget consumed, no breaker penalty — because
// a draining worker is healthy, just leaving.
const DrainingHeader = "X-Smtflexd-Draining"

// TraceparentHeader carries the coordinator's trace context on a dispatch:
// "<trace-id>;<parent-span-id>" (obs.FormatTraceparent). A worker adopts it
// via obs.StartRemoteTrace so its spans join the coordinator's trace, and
// returns its completed subtree in the CellResponse for stitching. Dispatches
// also carry the standard X-Request-ID, which workers reuse in their request
// logs instead of minting a fresh one.
const TraceparentHeader = "Smtflexd-Traceparent"

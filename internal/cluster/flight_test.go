package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFlightRecorderTracksSweep drives a real journaled sweep and checks the
// flight record end to end: every dispatchable cell is logged queued →
// dispatched → completed with its worker and timing split, the record is
// retrievable by full ID and by prefix, and a dump lands next to the journal.
func TestFlightRecorderTracksSweep(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Journal = openTestJournal(t, dir)
	ws := newWorkerServer(t, nil)
	c := newTestCoordinator(t, []string{ws.URL}, opts)
	fleetSweepJSON(t, c)

	metas := c.FlightList()
	if len(metas) != 1 {
		t.Fatalf("flight list has %d sweeps, want 1", len(metas))
	}
	m := metas[0]
	if m.Active || m.Err != "" || m.Total == 0 || m.Completed != m.Total-m.Prefilled {
		t.Fatalf("flight meta after a clean sweep: %+v", m)
	}

	rec, ok := c.FlightRecordFor(m.Sweep)
	if !ok {
		t.Fatalf("no flight record for sweep %s", m.Sweep)
	}
	if len(rec.Cells) != m.Total-m.Prefilled {
		t.Fatalf("record has %d cells, want %d dispatchable", len(rec.Cells), m.Total-m.Prefilled)
	}
	for _, cl := range rec.Cells {
		if !cl.Done || cl.Worker != ws.URL || cl.Attempts < 1 {
			t.Fatalf("cell %s: %+v, want done via %s", cl.Key, cl, ws.URL)
		}
		if cl.WallNs <= 0 || cl.QueueNs < 0 || cl.WireNs < 0 || cl.ComputeNs < 0 {
			t.Fatalf("cell %s timing split: wall=%d queue=%d wire=%d compute=%d", cl.Key, cl.WallNs, cl.QueueNs, cl.WireNs, cl.ComputeNs)
		}
		if len(cl.Events) < 3 || cl.Events[0].Kind != FlightQueued || cl.Events[len(cl.Events)-1].Kind != FlightCompleted {
			t.Fatalf("cell %s events: %+v, want queued ... completed", cl.Key, cl.Events)
		}
	}

	// Prefix lookup (dump filenames truncate the address) and a miss.
	if rec2, ok := c.FlightRecordFor(m.Sweep[:12]); !ok || rec2.Sweep != m.Sweep {
		t.Errorf("prefix lookup %s failed", m.Sweep[:12])
	}
	if _, ok := c.FlightRecordFor("deadbeef0000"); ok {
		t.Error("lookup of unknown sweep succeeded")
	}

	// The dump next to the journal: atomic, decodable, same sweep.
	path := filepath.Join(dir, "flight-"+m.Sweep[:16]+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	var dumped FlightRecord
	if err := json.Unmarshal(b, &dumped); err != nil {
		t.Fatalf("flight dump not valid JSON: %v", err)
	}
	if dumped.Sweep != m.Sweep || len(dumped.Cells) != len(rec.Cells) {
		t.Fatalf("dumped record sweep=%s cells=%d, want %s/%d", dumped.Sweep, len(dumped.Cells), m.Sweep, len(rec.Cells))
	}
}

// TestFlightRecorderBounds pins the recorder's safety properties: per-cell
// event capping, the completed-sweep ring bound, and nil-receiver inertness.
func TestFlightRecorderBounds(t *testing.T) {
	f := newFlightRecorder("", nil)
	f.begin("sweep-events", "4B", "heterogeneous", 1, 0)
	f.register("sweep-events", "cellA", 2, "mix-1")
	for i := 0; i < maxFlightEvents+10; i++ {
		f.event("cellA", FlightRetried, "w1", "boom")
	}
	f.attemptDone("cellA", "w1", 5*time.Millisecond, 2e6)
	f.complete("sweep-events", "cellA", "w1")
	f.end("sweep-events", nil)

	rec, ok := f.get("sweep-events")
	if !ok || len(rec.Cells) != 1 {
		t.Fatalf("record not retrievable: ok=%t", ok)
	}
	cl := rec.Cells[0]
	if len(cl.Events) != maxFlightEvents || cl.DroppedEvents == 0 {
		t.Errorf("events=%d dropped=%d, want capped at %d with drops counted", len(cl.Events), cl.DroppedEvents, maxFlightEvents)
	}
	if cl.Retries != maxFlightEvents+10 {
		t.Errorf("retries=%d, want counters to advance past the event cap", cl.Retries)
	}
	if cl.WireNs != 3e6 || cl.ComputeNs != 2e6 {
		t.Errorf("wire=%d compute=%d, want RTT minus compute split", cl.WireNs, cl.ComputeNs)
	}

	for i := 0; i < maxFlightSweeps+3; i++ {
		id := fmt.Sprintf("sweep-ring-%02d", i)
		f.begin(id, "4B", "homogeneous", 0, 0)
		f.end(id, nil)
	}
	if got := len(f.list()); got != maxFlightSweeps {
		t.Errorf("completed ring holds %d sweeps, want %d", got, maxFlightSweeps)
	}

	var nilRec *flightRecorder
	nilRec.begin("x", "d", "k", 1, 0)
	nilRec.register("x", "k1", 1, "m")
	nilRec.event("k1", FlightDispatched, "w", "")
	nilRec.complete("x", "k1", "w")
	nilRec.end("x", nil)
	if nilRec.list() != nil {
		t.Error("nil recorder returned a non-nil list")
	}
	if _, ok := nilRec.get("x"); ok {
		t.Error("nil recorder returned a record")
	}
}

// TestFlightRecorderFailedSweep: an aborted sweep's record carries the error
// and stays retrievable.
func TestFlightRecorderFailedSweep(t *testing.T) {
	f := newFlightRecorder("", nil)
	f.begin("sweep-err", "4B", "heterogeneous", 4, 1)
	f.end("sweep-err", context.Canceled)
	rec, ok := f.get("sweep-err")
	if !ok || rec.Err != context.Canceled.Error() || rec.Active {
		t.Fatalf("failed sweep record: ok=%t rec=%+v", ok, rec)
	}
}

package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeObservableWorker serves the three scrape surfaces with fixed content:
// a tiny Prometheus exposition, one time-stack group, and machstats (or a
// 404 for the feature-gated surfaces when gated is true).
func fakeObservableWorker(t *testing.T, gated bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rw.Write([]byte("# HELP smtflexd_inflight Requests currently executing.\n" + //nolint:errcheck
			"# TYPE smtflexd_inflight gauge\n" +
			"smtflexd_inflight 2\n" +
			"smtflexd_requests_total{route=\"/v1/sweep\",code=\"200\"} 5\n"))
	})
	if !gated {
		mux.HandleFunc("GET /debug/timestack", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			rw.Write([]byte(`{"stacks":[{"name":"/v1/sweep","traces":2,"wall_ns":100,` + //nolint:errcheck
				`"by_ns":{"solve":60,"other":40},"percent":{"solve":60,"other":40}}]}`))
		})
		mux.HandleFunc("GET /debug/machstats", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			rw.Write([]byte(`{"counters":[{"name":"llc_misses","value":7}],` + //nolint:errcheck
				`"cycles":[{"name":"mem","cycles":3.5}],"stacks":[]}`))
		})
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestFleetSnapshotMergesAndDegrades scrapes two live workers (one with the
// optional surfaces gated off) plus one dead one: the dead worker degrades to
// an error row, totals sum across whoever answered, and the merged time
// stacks recompute their percentages over fleet-wide nanoseconds.
func TestFleetSnapshotMergesAndDegrades(t *testing.T) {
	full := fakeObservableWorker(t, false)
	gated := fakeObservableWorker(t, true)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	c := newTestCoordinator(t, []string{full.URL, gated.URL, dead.URL}, testOptions())
	snap := c.FleetSnapshot(context.Background())

	if len(snap.Workers) != 3 || snap.Scraped != 2 || snap.Errors != 1 {
		t.Fatalf("snapshot workers=%d scraped=%d errors=%d, want 3/2/1", len(snap.Workers), snap.Scraped, snap.Errors)
	}
	for _, row := range snap.Workers {
		switch row.URL {
		case dead.URL:
			if row.Err == "" {
				t.Error("dead worker row carries no error")
			}
		case full.URL:
			if row.Err != "" || len(row.TimeStacks) != 1 || row.MachCounters["counter/llc_misses"] != 7 {
				t.Errorf("full worker row: %+v", row)
			}
		case gated.URL:
			// Gated debug surfaces are a configuration, not a scrape failure.
			if row.Err != "" || row.TimeStacks != nil || row.MachCounters != nil {
				t.Errorf("gated worker row: %+v", row)
			}
		}
	}
	if got := snap.Totals["smtflexd_inflight"]; got != 4 {
		t.Errorf("summed inflight = %g, want 4", got)
	}
	if got := snap.Totals[`smtflexd_requests_total{route="/v1/sweep",code="200"}`]; got != 10 {
		t.Errorf("summed labeled series = %g, want 10", got)
	}
	if got := snap.MachCounters["cycles/mem"]; got != 3.5 {
		t.Errorf("merged cycles/mem = %g, want 3.5", got)
	}
	if len(snap.TimeStacks) != 1 || snap.TimeStacks[0].ByNs["solve"] != 60 || snap.TimeStacks[0].Percent["solve"] != 60 {
		t.Errorf("merged time stacks: %+v", snap.TimeStacks)
	}

	text := snap.RenderText()
	for _, want := range []string{"3 workers, 2 scraped, 1 errors", "smtflexd_inflight", "cycles/mem", "/v1/sweep"} {
		if !strings.Contains(text, want) {
			t.Errorf("RenderText missing %q:\n%s", want, text)
		}
	}
}

// TestParsePromText pins the scrape parser's tolerance: comments, blanks and
// garbage lines are skipped, labeled and bare series both parse.
func TestParsePromText(t *testing.T) {
	got := parsePromText([]byte("# HELP x y\n# TYPE x counter\nx 1\nx{a=\"b\"} 2.5\n\nnot a sample\nbad value{} x\n"))
	if len(got) != 2 || got["x"] != 1 || got[`x{a="b"}`] != 2.5 {
		t.Fatalf("parsePromText = %v", got)
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"

	"smtflex/internal/contention"
	"smtflex/internal/interval"
	"smtflex/internal/memo"
	"smtflex/internal/obs"
	"smtflex/internal/study"
)

// The fabric's wire types. Cell results travel as JSON float64s, which Go
// encodes in the shortest form that round-trips exactly — the property the
// bit-identical-tables contract rests on.

// CellRequest asks a worker to evaluate one sweep cell: one mix at one
// thread count on one design. The design is reconstructed from its name
// plus the explicit SMT and bandwidth fields (bandwidth is always the
// actual value, never 0-means-default), and the mix ships its full program
// list, so the worker needs no knowledge of the coordinator's mix seed.
type CellRequest struct {
	// Key is the cell's content address (memo.KeyHash of study.CellKey),
	// under which the worker caches its result.
	Key string `json:"key"`
	// Fingerprint is the coordinator engine's study.Fingerprint; the worker
	// rejects the cell if its own differs (ErrFingerprintMismatch).
	Fingerprint string `json:"fingerprint"`
	// Design, SMT and BandwidthGBps reconstruct the design point.
	Design        string  `json:"design"`
	SMT           bool    `json:"smt"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	// Kind is "homogeneous" or "heterogeneous" (informational — the mix is
	// explicit).
	Kind string `json:"kind"`
	// N is the cell's thread count (informational; len(Programs) governs).
	N int `json:"n"`
	// MixID and Programs are the mix, one benchmark name per thread.
	MixID    string   `json:"mix_id"`
	Programs []string `json:"programs"`
}

// CellThread is the wire form of one thread's evaluation detail.
type CellThread struct {
	Program   string  `json:"program"`
	Core      int     `json:"core"`
	IPC       float64 `json:"ipc"`
	UopsPerNs float64 `json:"uops_per_ns"`
	Base      float64 `json:"base"`
	Branch    float64 `json:"branch"`
	ICache    float64 `json:"icache"`
	L2        float64 `json:"l2"`
	LLC       float64 `json:"llc"`
	Mem       float64 `json:"mem"`
}

// CellResponse is the wire form of one cell's study.MixResult.
type CellResponse struct {
	// Key echoes the request's content address.
	Key            string       `json:"key"`
	STP            float64      `json:"stp"`
	ANTT           float64      `json:"antt"`
	Watts          float64      `json:"watts"`
	WattsUngated   float64      `json:"watts_ungated"`
	BusUtilization float64      `json:"bus_utilization"`
	Threads        []CellThread `json:"threads"`
	Iterations     int          `json:"iterations"`
	Residual       float64      `json:"residual"`
	Converged      bool         `json:"converged"`
	// Digest is the integrity hash of the response: SHA-256 (lowercase hex)
	// over the canonical cell encoding — this struct's JSON with Digest
	// itself empty. Workers compute it at evaluation time; the coordinator
	// recomputes it on receipt and quarantines any mismatch. Because the
	// encoding is the same shortest-round-trip float64 JSON as the wire form,
	// two correct workers always produce identical digests for the same cell.
	Digest string `json:"digest"`

	// Trace and ComputeNs are the observability envelope: the worker's
	// completed span subtree (bounded — see AttachTrace) and how long this
	// evaluation took on the worker. Both are excluded from the digest:
	// timings legitimately differ between two correct evaluations of the
	// same cell, so they must not participate in integrity verification,
	// audit comparison, or journal replay. The coordinator grafts Trace into
	// its own trace and strips it before storing or journaling the cell.
	Trace     *CellTrace `json:"trace,omitempty"`
	ComputeNs int64      `json:"compute_ns,omitempty"`
}

// CellTrace is a worker's completed span subtree riding home in a
// CellResponse: span times are nanoseconds relative to StartUnixNs on the
// worker's clock, and obs.Span.Graft re-anchors them on the coordinator.
type CellTrace struct {
	TraceID     string         `json:"trace_id"`
	StartUnixNs int64          `json:"start_unix_ns"`
	Dropped     int            `json:"dropped,omitempty"`
	Spans       []obs.SpanJSON `json:"spans"`
}

// maxWireSpans bounds the subtree one CellResponse carries home; a worker
// evaluating one cell produces a handful of spans, so the cap only matters
// when something pathological (a runaway child campaign) would otherwise
// bloat every dispatch response.
const maxWireSpans = 256

// AttachTrace fills the response's observability envelope from the worker's
// in-flight request trace: the completed spans so far (the evaluation is done
// by the time this is called) plus the measured compute time. With tracing
// dark there is no current trace and only ComputeNs is set.
func AttachTrace(ctx context.Context, resp *CellResponse, computeNs int64) {
	if resp == nil {
		return
	}
	resp.ComputeNs = computeNs
	if t := obs.CurrentTrace(ctx); t != nil {
		spans, start, dropped := t.WireSubtree(maxWireSpans)
		if len(spans) > 0 {
			resp.Trace = &CellTrace{
				TraceID:     t.ID,
				StartUnixNs: start.UnixNano(),
				Dropped:     dropped,
				Spans:       spans,
			}
		}
	}
}

// digest computes the canonical integrity digest of resp: memo.KeyHashBytes
// of the response's JSON with the Digest field and the observability
// envelope (Trace, ComputeNs) zeroed — see the field comments above.
func (resp CellResponse) digest() string {
	resp.Digest = ""
	resp.Trace = nil
	resp.ComputeNs = 0
	b, err := json.Marshal(resp)
	if err != nil {
		// CellResponse contains only marshalable fields; this is unreachable
		// but must not be silently ignored.
		panic(fmt.Sprintf("cluster: marshal CellResponse for digest: %v", err)) // panicgate:allow unreachable
	}
	return memo.KeyHashBytes(b)
}

// verifyIntegrity checks that resp is the cell the coordinator asked for and
// that its content matches its digest. wantKey guards against misrouted or
// duplicated responses; the digest guards against corruption and lying
// workers.
func (resp CellResponse) verifyIntegrity(wantKey string) error {
	if resp.Key != wantKey {
		return fmt.Errorf("cell response key %q, want %q", resp.Key, wantKey)
	}
	if resp.Digest == "" {
		return fmt.Errorf("cell response for %s carries no digest", wantKey)
	}
	if got := resp.digest(); got != resp.Digest {
		return fmt.Errorf("cell response digest mismatch for %s: computed %s, carried %s", wantKey, got, resp.Digest)
	}
	return nil
}

// toWire converts an engine MixResult to its wire form.
func toWire(key string, r study.MixResult) CellResponse {
	resp := CellResponse{
		Key:            key,
		STP:            r.STP,
		ANTT:           r.ANTT,
		Watts:          r.Watts,
		WattsUngated:   r.WattsUngated,
		BusUtilization: r.BusUtilization,
		Threads:        make([]CellThread, len(r.Threads)),
		Iterations:     r.Diag.Iterations,
		Residual:       r.Diag.Residual,
		Converged:      r.Diag.Converged,
	}
	for i, th := range r.Threads {
		resp.Threads[i] = CellThread{
			Program: th.Program, Core: th.Core, IPC: th.IPC, UopsPerNs: th.UopsPerNs,
			Base: th.Stack.Base, Branch: th.Stack.Branch, ICache: th.Stack.ICache,
			L2: th.Stack.L2, LLC: th.Stack.LLC, Mem: th.Stack.Mem,
		}
	}
	resp.Digest = resp.digest()
	return resp
}

// fromWire converts a wire cell result back to the engine form the
// reassembly (study.AssembleSweep) consumes.
func fromWire(resp CellResponse) study.MixResult {
	r := study.MixResult{
		STP:            resp.STP,
		ANTT:           resp.ANTT,
		Watts:          resp.Watts,
		WattsUngated:   resp.WattsUngated,
		BusUtilization: resp.BusUtilization,
		Threads:        make([]study.MixThread, len(resp.Threads)),
		Diag: contention.Diagnostics{
			Iterations: resp.Iterations,
			Residual:   resp.Residual,
			Converged:  resp.Converged,
		},
	}
	for i, th := range resp.Threads {
		r.Threads[i] = study.MixThread{
			Program: th.Program, Core: th.Core, IPC: th.IPC, UopsPerNs: th.UopsPerNs,
			Stack: interval.CPIStack{
				Base: th.Base, Branch: th.Branch, ICache: th.ICache,
				L2: th.L2, LLC: th.LLC, Mem: th.Mem,
			},
		}
	}
	return r
}

// errorBody is the JSON error shape workers return on non-2xx, mirroring the
// server package's ErrorResponse (not imported to keep the dependency
// direction server → cluster).
type errorBody struct {
	Error string `json:"error"`
}

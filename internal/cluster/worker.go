package cluster

import (
	"context"
	"fmt"

	"smtflex/internal/config"
	"smtflex/internal/memo"
	"smtflex/internal/study"
	"smtflex/internal/workload"
)

// Worker is the worker-side half of the fabric: it evaluates cells through
// the local engine, caching results by content address so a re-dispatched or
// hedged duplicate — or the same cell in a later sweep — is served without
// recomputation. The HTTP plumbing (admission, tracing, metrics) lives in
// internal/server, which mounts Evaluate under CellPath in worker role; this
// type is transport-free so tests can drive it directly.
type Worker struct {
	st *study.Study
	// cells is the worker-local content-addressed result store. Its hit/miss
	// counters surface on the worker's /metrics as cache="cells".
	cells memo.Cache[string, CellResponse]
}

// NewWorker wraps a study engine as a fabric worker. maxCells bounds the
// content store with LRU eviction (0 = unbounded).
func NewWorker(st *study.Study, maxCells int) *Worker {
	w := &Worker{st: st}
	w.cells.Name = "cells"
	if maxCells > 0 {
		w.cells.Bound(maxCells)
	}
	return w
}

// Evaluate computes one cell, serving repeats from the content store.
// Identical concurrent requests (a coordinator hedge racing a retry)
// coalesce onto one computation via the store's singleflight semantics.
func (w *Worker) Evaluate(ctx context.Context, req CellRequest) (CellResponse, error) {
	if req.Fingerprint != "" && req.Fingerprint != w.st.Fingerprint() {
		return CellResponse{}, fmt.Errorf("%w: coordinator %q vs worker %q",
			ErrFingerprintMismatch, req.Fingerprint, w.st.Fingerprint())
	}
	if req.Design == "" {
		return CellResponse{}, fmt.Errorf("cluster: cell request missing design")
	}
	if len(req.Programs) == 0 {
		return CellResponse{}, fmt.Errorf("cluster: cell request has no programs")
	}
	d, err := config.DesignByName(req.Design, req.SMT)
	if err != nil {
		return CellResponse{}, err
	}
	if req.BandwidthGBps > 0 {
		d = d.WithBandwidth(req.BandwidthGBps)
	}
	mix := workload.Mix{ID: req.MixID, Programs: req.Programs}
	compute := func(ctx context.Context) (CellResponse, error) {
		r, err := w.st.EvaluateMixCtx(ctx, d, mix)
		if err != nil {
			return CellResponse{}, err
		}
		return toWire(req.Key, r), nil
	}
	if req.Key == "" {
		// No content address — evaluate without caching.
		return compute(ctx)
	}
	return w.cells.GetCtx(ctx, req.Key, compute)
}

// CacheCounters exposes the content store's counters for /metrics.
func (w *Worker) CacheCounters() []memo.Counters {
	return []memo.Counters{w.cells.Counters()}
}
